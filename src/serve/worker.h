// Real-time serving loop — persistent per-shard workers and the live
// front end that feeds them.
//
// PR 3's EnginePool::drain_parallel spawns one thread per shard *per
// drain*: fine for a closed-loop bench, hopeless for live traffic
// (thread create/join per timestep). This layer keeps one persistent
// worker thread per shard, woken by a condition variable when work
// arrives and sleeping toward the batcher's max-wait deadline
// otherwise, so an idle server burns no CPU and a busy one never pays
// thread churn.
//
// Threading model (docs/serving.md "Live mode"):
//   * Producers call LiveServer::submit() from any thread. A single
//     stamping mutex assigns each request a monotone arrival stamp and
//     a global seq, optionally records it as a trace event, and hands
//     it to its session's shard worker — all under the one lock, so
//     the per-shard queue order, the recorded trace order and the
//     stamp order are the same total order. That total order is what
//     makes a recorded live run replay bit-identically through the
//     virtual-clock path (serve/trace.h).
//   * Each ShardWorker drains its two-buffer inbox (producers append
//     under a short lock; the worker swaps buffers and drains outside
//     it — the MPSC handoff), feeds its shard's RequestBatcher, and
//     serves due batches. The shard itself stays single-threaded:
//     everything PR 3 proved about shared-nothing shards still holds,
//     the worker is just a persistent home for that thread.
//   * Wake-time jitter moves batch *boundaries*, never values: the
//     determinism guarantee makes outputs independent of grouping, and
//     session TTL/LRU decisions are arrival-driven (serve/session.h).
//
// Supervision (docs/serving.md "Crash recovery"): each worker stamps a
// monotonic heartbeat at every loop iteration, between the batches of
// a settle pass, and at every response delivery, so a watchdog
// (serve/supervisor.h) can tell a busy worker — however deep its
// backlog — from a wedged one. A worker judged dead is *abandoned* — a
// cooperative flag it checks before every touch of the shard (the
// pre-serve checkpoint and again between the batches of a settle pass)
// AND at every response delivery: the worker's sink fence drops any
// response once the flag is set, so even a thread that was wedged
// mid-batch inside the engine and resumes after the abandon grace can
// never hand out a response the rebuilt shard will re-serve (the
// journal side of that race is fenced by store poisoning —
// EnginePool::rebuild_shard). The server quarantines the shard
// (`submit` returns kUnavailable), rebuilds it from its journal and
// mounts a fresh worker. The abandoned worker object moves to a
// graveyard so cooperating threads keep seeing valid memory; the
// worker thread itself shares ownership of its control block, so even
// a thread detached at destruction never touches freed memory.
//
// Ledger: inflight() counts accepted-but-not-yet-RESPONDED requests —
// the sink fence decrements it per delivered response, and a
// suppressed (post-abandon) response deliberately never decrements.
// An abandoned worker's final inflight() is therefore exactly its
// requests that no one answered, and the server folds it into
// `abandoned` once the thread acknowledges (or at shutdown for a
// thread wedged forever). The ledger then reads:
//     submitted == responded + abandoned        (after shutdown)
// — every accepted request is either answered or accounted as lost to
// a restart (its client re-drives it via the resume protocol). One
// caveat, inherent to not waiting forever: a thread wedged INSIDE the
// user sink call holds one response past the fence; it is counted
// abandoned at shutdown, and if the sink ever unblocks afterwards the
// delivery also lands — the client sees the answer it already re-drove.
//
// The sink passed to LiveServer is invoked concurrently, one call at a
// time per shard but across shards in parallel — it must be
// thread-safe, and it must not block indefinitely (the live tool hands
// writes to a dedicated writer thread so a slow reader cannot stall a
// shard).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/pool.h"
#include "serve/trace.h"

namespace zss::serve {

/// Monotonic wall clock in microseconds (process-wide epoch). This is
/// the heartbeat/watchdog timebase — deliberately NOT LiveConfig's
/// injectable arrival clock, because stall detection must measure real
/// elapsed time even under a frozen test clock.
std::int64_t mono_now_us();

struct LiveConfig {
  /// Clock used for arrival stamps and serve instants, in microseconds.
  /// Empty = steady clock, zeroed at LiveServer construction. Tests may
  /// inject a fake — condvar waits time out on the real clock, but the
  /// max-wait deadline is computed in this clock's timebase, so a fake
  /// clock moves batch boundaries only (which the determinism guarantee
  /// absorbs); a *frozen* fake clock never reaches a max-wait deadline
  /// and defers partial batches to flush/shutdown.
  std::function<std::int64_t()> now_us;
  /// Per-shard backpressure: submit() sheds (returns nullopt) when the
  /// target worker already holds this many unserved requests.
  /// 0 = unbounded.
  num::Index max_queue = 0;
  /// Record every accepted request as a TraceEvent (recorded_trace()),
  /// replayable through serve::replay for a bit-identical rerun.
  bool record = false;
  /// Per-request deadline: each accepted request must be *served* within
  /// this many microseconds of its arrival stamp or it is answered
  /// `err timeout` instead (serve/request.h). 0 = no deadline.
  std::int64_t deadline_us = 0;
};

/// Why submit() did not return a seq (or kOk when it did).
enum class SubmitStatus {
  kOk,           // accepted; seq returned
  kShed,         // shard over max_queue — back off and retry
  kUnavailable,  // shard quarantined, restart in progress — retry soon
  kStopped,      // server shut down
};

/// One persistent worker: owns the thread that is the sole toucher of
/// its EngineShard. Producers only append to the inbox; the worker
/// swaps it out under the same short lock and does all engine work
/// unlocked.
class ShardWorker {
 public:
  ShardWorker(EngineShard& shard, ResponseSink sink,
              std::function<std::int64_t()> now_us, num::Index max_queue);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  void start();

  /// MPSC producer side: appends and wakes the worker. Returns false
  /// when shedding (queue bound exceeded), after request_stop(), or
  /// after abandon().
  bool submit(const Request& r);

  /// Asks the worker to serve everything queued (ignoring max-wait)
  /// on its next wakeup.
  void request_flush();

  /// Drain-then-exit: the worker serves its inbox and queue, then
  /// returns. Producers must stop submitting first (LiveServer does).
  void request_stop();
  void join();

  /// Supervision: tells the worker to exit WITHOUT serving anything
  /// more. The flag is checked before every touch of the shard, so a
  /// worker the watchdog misjudged (slow, not dead) exits on its next
  /// instruction past the stall instead of emitting duplicate
  /// responses for work the rebuilt shard will redo. Waits a short
  /// grace period for the thread to acknowledge; returns true if it
  /// did (false = genuinely wedged — it will still exit cooperatively
  /// if it ever resumes).
  bool abandon();

  /// Monotonic stamp (mono_now_us timebase) of the worker's last sign
  /// of life: loop iteration, settle-pass batch boundary, or response
  /// delivery. The watchdog's liveness signal: a worker with queued
  /// work whose heartbeat stops advancing is wedged — and because the
  /// stamp advances per *response*, a healthy worker grinding through
  /// an arbitrarily deep backlog never reads as wedged.
  std::int64_t heartbeat_us() const {
    return ctl_->heartbeat_us.load(std::memory_order_relaxed);
  }

  /// Requests accepted but not yet *responded to*: the sink fence
  /// decrements per delivered response, so for an abandoned worker
  /// this is exactly the count no client will ever hear back about.
  num::Index inflight() const {
    return ctl_->inflight.load(std::memory_order_relaxed);
  }

  /// True once run() returned (normal stop or abandonment).
  bool exited() const { return ctl_->exited.load(std::memory_order_acquire); }

  /// Test hooks: park the worker thread at its pre-serve checkpoint (a
  /// deterministic "wedge" the supervisor tests detect), and release
  /// it. A released worker re-checks abandonment before serving.
  void wedge_for_testing() {
    ctl_->wedged.store(true, std::memory_order_release);
  }
  void release_wedge() {
    ctl_->wedged.store(false, std::memory_order_release);
  }

 private:
  // Everything the worker thread touches lives here, co-owned by the
  // thread's lambda via shared_ptr: a wedged thread that ~ShardWorker
  // had to detach keeps its state alive on its own and never
  // dereferences freed memory, even after the graveyard (and the
  // ShardWorker object) are long gone. The shard/sink/clock it points
  // INTO are a different story — those belong to the pool/server, which
  // is why abandonment fences every touch of them (see run()).
  struct Control {
    EngineShard* shard = nullptr;
    ResponseSink sink;
    std::function<std::int64_t()> now;
    num::Index max_queue = 0;

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Request> inbox;   // produced under mu
    std::vector<Request> taking;  // worker-private swap target
    // Accepted minus responded. Incremented under mu on submit, but
    // atomic so the supervisor/restart/sink paths touch it lock-free.
    std::atomic<num::Index> inflight{0};
    bool stop = false;
    bool flush = false;
    std::atomic<bool> abandoned{false};
    std::atomic<bool> wedged{false};
    std::atomic<bool> exited{false};
    std::atomic<std::int64_t> heartbeat_us{0};
  };

  static void run(Control& c);

  std::shared_ptr<Control> ctl_;
  std::thread thread_;
};

/// The live front end: stamps, records and routes requests onto the
/// pool's shard workers, and owns graceful shutdown plus the
/// supervisor's restart primitive.
class LiveServer {
 public:
  /// Borrows the pool (and its shards) for the server's lifetime. The
  /// workers start immediately; `sink` must be thread-safe (see top).
  /// If the pool recovered journaled sessions, their newest arrival
  /// stamp seeds the stamping clock's floor so per-shard arrivals stay
  /// monotone across the restart.
  LiveServer(EnginePool& pool, ResponseSink sink, LiveConfig config = {});
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  /// Stamps and enqueues one request; returns its seq, or nullopt when
  /// not accepted — `status` (optional) says why: kShed (shard over
  /// max_queue), kUnavailable (shard quarantined mid-restart), or
  /// kStopped. `client` tags the issuing connection (echoed on the
  /// Response so the multiplexed front end routes it back; 0 = no
  /// connection). The tag never enters stamping, batching or values —
  /// request.h.
  std::optional<std::uint64_t> submit(SessionId session, num::Index token,
                                      std::uint64_t client = 0,
                                      SubmitStatus* status = nullptr);

  /// Asks every worker to drain its queue without waiting for max-wait
  /// deadlines (the protocol's `flush` verb). Asynchronous.
  void flush_all();

  /// Graceful shutdown: refuses new submissions, lets every worker
  /// drain in-flight requests, joins the threads. Idempotent; the
  /// destructor calls it too. Abandoned workers that never resumed are
  /// detached rather than joined (they own no resources that outlive
  /// the pool).
  void shutdown();

  /// The supervisor's repair primitive: quarantine shard `i` (submits
  /// return kUnavailable), abandon its worker, rebuild the shard from
  /// its journal (EnginePool::rebuild_shard) and mount a fresh worker.
  /// The old worker's unanswered requests (its final inflight) are
  /// folded into `abandoned` as soon as the thread acknowledges the
  /// abandon — immediately when it acks within the grace period,
  /// otherwise deferred until it exits (checked at later restarts and
  /// at shutdown), because a thread still wedged mid-delivery may yet
  /// complete one response. Safe to call from the watchdog thread;
  /// no-op if already quarantined or shut down. Surviving shards keep
  /// serving throughout.
  void restart_shard(num::Index i);

  std::int64_t now_us() const { return now_(); }
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  std::uint64_t responded() const {
    return responded_.load(std::memory_order_relaxed);
  }
  /// Accepted requests lost to worker restarts (their clients re-drive
  /// them). After shutdown: submitted == responded + abandoned.
  std::uint64_t abandoned() const {
    return abandoned_.load(std::memory_order_relaxed);
  }
  /// Worker restarts performed (supervisor recoveries).
  std::uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  /// Shards currently quarantined (0 in steady state).
  num::Index quarantined() const {
    return quarantined_count_.load(std::memory_order_relaxed);
  }

  num::Index num_workers() const {
    return static_cast<num::Index>(workers_.size());
  }
  /// The live worker of shard `i` (replaced by restart_shard; callers
  /// on other threads should not cache the pointer across restarts).
  ShardWorker& worker(num::Index i) {
    return *workers_[static_cast<std::size_t>(i)];
  }

  /// Runs `fn` with the server's topology frozen: no restart_shard can
  /// swap a shard/worker slot while `fn` executes. The stats snapshot
  /// path walks the pool's shards under this so it never reads a slot
  /// mid-rebuild. Keep `fn` short — it holds the stamping lock.
  void with_stable_topology(const std::function<void()>& fn) const;

  /// The accepted requests as a replayable trace (LiveConfig::record).
  /// Only meaningful after shutdown(); sorted by construction.
  /// Timed-out requests are filtered out at shutdown — they produced
  /// no state, so replaying exactly the surviving events reproduces
  /// the run's digests. Requests abandoned by a restart are NOT
  /// filtered (the recorder cannot see inside a dead worker's queue);
  /// a trace recorded across a restart replays self-consistently but
  /// is not digest-comparable to the journal-recovered state.
  const std::vector<TraceEvent>& recorded_trace() const { return recorded_; }

 private:
  /// Folds abandoned_pending_ workers whose threads have exited into
  /// abandoned_; with final_fold, folds the rest too (shutdown). Caller
  /// must hold restart_mu_.
  void fold_pending_abandoned(bool final_fold);

  EnginePool* pool_;
  std::function<std::int64_t()> now_;
  ResponseSink counted_sink_;  // kept for mounting replacement workers
  num::Index max_queue_ = 0;
  std::int64_t deadline_us_ = 0;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  // Replaced workers; kept alive (valid memory for wedged threads)
  // until shutdown, where exited ones are joined and wedged ones
  // detached.
  std::vector<std::unique_ptr<ShardWorker>> worker_graveyard_;

  mutable std::mutex stamp_mu_;
  // Serializes restart_shard against shutdown and other restarts;
  // never held on the submit path.
  std::mutex restart_mu_;
  std::int64_t last_stamp_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  bool record_ = false;
  std::vector<char> quarantined_;  // per shard, guarded by stamp_mu_
  // Abandoned workers that had not acknowledged within the grace
  // period — their inflight is folded into abandoned_ once they exit
  // (or at shutdown, wedged or not). Points into worker_graveyard_;
  // guarded by restart_mu_.
  std::vector<ShardWorker*> abandoned_pending_;
  std::vector<TraceEvent> recorded_;

  // Seqs answered `err timeout`, collected by the counted sink and
  // erased from recorded_ at shutdown (seq == recorded_ index).
  std::mutex timeout_mu_;
  std::vector<std::uint64_t> timeout_seqs_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> responded_{0};
  std::atomic<std::uint64_t> abandoned_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<num::Index> quarantined_count_{0};
};

}  // namespace zss::serve
