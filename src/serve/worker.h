// Real-time serving loop — persistent per-shard workers and the live
// front end that feeds them.
//
// PR 3's EnginePool::drain_parallel spawns one thread per shard *per
// drain*: fine for a closed-loop bench, hopeless for live traffic
// (thread create/join per timestep). This layer keeps one persistent
// worker thread per shard, woken by a condition variable when work
// arrives and sleeping toward the batcher's max-wait deadline
// otherwise, so an idle server burns no CPU and a busy one never pays
// thread churn.
//
// Threading model (docs/serving.md "Live mode"):
//   * Producers call LiveServer::submit() from any thread. A single
//     stamping mutex assigns each request a monotone arrival stamp and
//     a global seq, optionally records it as a trace event, and hands
//     it to its session's shard worker — all under the one lock, so
//     the per-shard queue order, the recorded trace order and the
//     stamp order are the same total order. That total order is what
//     makes a recorded live run replay bit-identically through the
//     virtual-clock path (serve/trace.h).
//   * Each ShardWorker drains its two-buffer inbox (producers append
//     under a short lock; the worker swaps buffers and drains outside
//     it — the MPSC handoff), feeds its shard's RequestBatcher, and
//     serves due batches. The shard itself stays single-threaded:
//     everything PR 3 proved about shared-nothing shards still holds,
//     the worker is just a persistent home for that thread.
//   * Wake-time jitter moves batch *boundaries*, never values: the
//     determinism guarantee makes outputs independent of grouping, and
//     session TTL/LRU decisions are arrival-driven (serve/session.h).
//
// The sink passed to LiveServer is invoked concurrently, one call at a
// time per shard but across shards in parallel — it must be
// thread-safe, and it must not block indefinitely (the live tool hands
// writes to a dedicated writer thread so a slow reader cannot stall a
// shard).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/pool.h"
#include "serve/trace.h"

namespace zss::serve {

struct LiveConfig {
  /// Clock used for arrival stamps and serve instants, in microseconds.
  /// Empty = steady clock, zeroed at LiveServer construction. Tests may
  /// inject a fake — condvar waits time out on the real clock, but the
  /// max-wait deadline is computed in this clock's timebase, so a fake
  /// clock moves batch boundaries only (which the determinism guarantee
  /// absorbs); a *frozen* fake clock never reaches a max-wait deadline
  /// and defers partial batches to flush/shutdown.
  std::function<std::int64_t()> now_us;
  /// Per-shard backpressure: submit() sheds (returns nullopt) when the
  /// target worker already holds this many unserved requests.
  /// 0 = unbounded.
  num::Index max_queue = 0;
  /// Record every accepted request as a TraceEvent (recorded_trace()),
  /// replayable through serve::replay for a bit-identical rerun.
  bool record = false;
};

/// One persistent worker: owns the thread that is the sole toucher of
/// its EngineShard. Producers only append to the inbox; the worker
/// swaps it out under the same short lock and does all engine work
/// unlocked.
class ShardWorker {
 public:
  ShardWorker(EngineShard& shard, ResponseSink sink,
              std::function<std::int64_t()> now_us, num::Index max_queue);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  void start();

  /// MPSC producer side: appends and wakes the worker. Returns false
  /// when shedding (queue bound exceeded) or after request_stop().
  bool submit(const Request& r);

  /// Asks the worker to serve everything queued (ignoring max-wait)
  /// on its next wakeup.
  void request_flush();

  /// Drain-then-exit: the worker serves its inbox and queue, then
  /// returns. Producers must stop submitting first (LiveServer does).
  void request_stop();
  void join();

 private:
  void run();

  EngineShard* shard_;
  ResponseSink sink_;
  std::function<std::int64_t()> now_;
  num::Index max_queue_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request> inbox_;   // produced under mu_
  std::vector<Request> taking_;  // worker-private swap target
  num::Index inflight_ = 0;      // inbox + batcher, for backpressure
  bool stop_ = false;
  bool flush_ = false;
  std::thread thread_;
};

/// The live front end: stamps, records and routes requests onto the
/// pool's shard workers, and owns graceful shutdown.
class LiveServer {
 public:
  /// Borrows the pool (and its shards) for the server's lifetime. The
  /// workers start immediately; `sink` must be thread-safe (see top).
  LiveServer(EnginePool& pool, ResponseSink sink, LiveConfig config = {});
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  /// Stamps and enqueues one request; returns its seq, or nullopt when
  /// shedding (shard over max_queue) or already shut down. `client`
  /// tags the issuing connection (echoed on the Response so the
  /// multiplexed front end routes it back; 0 = no connection). The tag
  /// never enters stamping, batching or values — request.h.
  std::optional<std::uint64_t> submit(SessionId session, num::Index token,
                                      std::uint64_t client = 0);

  /// Asks every worker to drain its queue without waiting for max-wait
  /// deadlines (the protocol's `flush` verb). Asynchronous.
  void flush_all();

  /// Graceful shutdown: refuses new submissions, lets every worker
  /// drain in-flight requests, joins the threads. Idempotent; the
  /// destructor calls it too.
  void shutdown();

  std::int64_t now_us() const { return now_(); }
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  std::uint64_t responded() const {
    return responded_.load(std::memory_order_relaxed);
  }

  /// The accepted requests as a replayable trace (LiveConfig::record).
  /// Only meaningful after shutdown(); sorted by construction.
  const std::vector<TraceEvent>& recorded_trace() const { return recorded_; }

 private:
  EnginePool* pool_;
  std::function<std::int64_t()> now_;
  std::deque<ShardWorker> workers_;

  std::mutex stamp_mu_;
  std::int64_t last_stamp_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  bool record_ = false;
  std::vector<TraceEvent> recorded_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> responded_{0};
};

}  // namespace zss::serve
