#include "serve/shard.h"

#include <algorithm>
#include <ctime>

namespace zss::serve {

namespace {

// Thread CPU time where the platform has it (Linux, macOS); wall time
// otherwise. Used only for ShardStats::cpu_us accounting.
double thread_cpu_us() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EngineShard::EngineShard(const nn::LstmCell& cell,
                         const core::StatePruner& pruner,
                         const BatchPolicy& policy,
                         sparse::EncoderConfig encoder, SessionTtl ttl,
                         core::QuantConfig quant)
    : cell_(&cell),
      engine_(cell, pruner, encoder, quant),
      sessions_(cell.hidden_dim(), ttl),
      batcher_(policy) {
  // A whole-batch quantile threshold would make a session's outputs
  // depend on its batch-mates — the one thing the serving determinism
  // guarantee cannot absorb (see the header note).
  ZSS_EXPECTS(pruner.config().mode != core::PruneMode::kTargetSparsity);
  // Processed lanes pin (unevictable) as the batch is assembled, so a
  // capped store must be strictly larger than a batch: an unpinned LRU
  // victim then always exists, and it is never a processed lane —
  // which keeps eviction a pure function of the request stream
  // (session.h) and eviction-vs-lane-pointer safety trivial.
  ZSS_EXPECTS(ttl.max_sessions == 0 || ttl.max_sessions > policy.max_batch);
  engine_.reserve(policy.max_batch);
  batch_.reserve(static_cast<std::size_t>(policy.max_batch));
  lanes_.reserve(static_cast<std::size_t>(policy.max_batch));
  x_.resize(policy.max_batch, cell.input_dim());
  h_.resize(policy.max_batch, cell.hidden_dim());
  c_.resize(policy.max_batch, cell.hidden_dim());
}

num::Index EngineShard::process_ready(std::int64_t now_us,
                                      const ResponseSink& sink) {
  if (!batcher_.ready(now_us)) return 0;
  return step_batch(now_us, sink);
}

num::Index EngineShard::flush(std::int64_t now_us, const ResponseSink& sink) {
  num::Index served = 0;
  while (num::Index n = step_batch(now_us, sink)) served += n;
  return served;
}

num::Index EngineShard::step_batch(std::int64_t now_us,
                                   const ResponseSink& sink) {
  const num::Index B = batcher_.pop_batch(batch_);
  if (B == 0) return 0;
  const num::Index dh = cell_->hidden_dim();
  const num::Index dx = cell_->input_dim();
  const auto t0 = std::chrono::steady_clock::now();
  const double cpu0 = thread_cpu_us();

  lanes_.clear();
  // Lanes pin one at a time, in request order, exactly as their
  // get_or_create runs. Pinning exists for memory safety (an eviction
  // must never invalidate an earlier lane's Session pointer) and is
  // redundant for victim choice — get_or_create just moved every
  // processed lane to the LRU front, so with max_sessions > max_batch
  // the tail is always someone else. Deliberately NOT pinned: sessions
  // named by *later* lanes of this batch. An eviction decision may
  // only depend on the prefix of requests processed so far — never on
  // batch composition, which live serving and virtual-clock replay
  // legitimately disagree on. If the LRU tail has a request later in
  // this very batch, it is evicted and restarted exactly as a serial
  // request-at-a-time processor would decide (grouping-independence is
  // test-enforced: LruEvictionIsIndependentOfBatchGrouping).
  for (num::Index r = 0; r < B; ++r) {
    const Request& rq = batch_[static_cast<std::size_t>(r)];
    Session& s = sessions_.get_or_create(rq.session, rq.arrival_us);
    s.pinned = true;
    lanes_.push_back(&s);
  }

  x_.resize(B, dx, 0.0f);
  for (num::Index r = 0; r < B; ++r) {
    const num::Index token = batch_[static_cast<std::size_t>(r)].token;
    ZSS_EXPECTS(token >= 0);
    x_(r, token % dx) = 1.0f;
  }

  if (B == 1) {
    // Batch-of-one fast path: the session's own matrices go straight
    // into the engine — no state is gathered, scattered, or copied.
    engine_.step(x_, lanes_[0]->h, lanes_[0]->c);
  } else {
    h_.reshape(B, dh);
    c_.reshape(B, dh);
    for (num::Index r = 0; r < B; ++r) {
      auto sh = lanes_[static_cast<std::size_t>(r)]->h.row(0);
      auto sc = lanes_[static_cast<std::size_t>(r)]->c.row(0);
      std::copy(sh.begin(), sh.end(), h_.row(r).begin());
      std::copy(sc.begin(), sc.end(), c_.row(r).begin());
    }
    engine_.step(x_, h_, c_);
    for (num::Index r = 0; r < B; ++r) {
      auto sh = lanes_[static_cast<std::size_t>(r)]->h.row(0);
      auto sc = lanes_[static_cast<std::size_t>(r)]->c.row(0);
      std::copy(h_.row(r).begin(), h_.row(r).end(), sh.begin());
      std::copy(c_.row(r).begin(), c_.row(r).end(), sc.begin());
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double service_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  stats_.requests += B;
  ++stats_.batches;
  stats_.busy_us += service_us;
  stats_.cpu_us += thread_cpu_us() - cpu0;

  for (num::Index r = 0; r < B; ++r) {
    Session& s = *lanes_[static_cast<std::size_t>(r)];
    ++s.steps;
    Response resp;
    resp.session = s.id;
    resp.seq = batch_[static_cast<std::size_t>(r)].seq;
    resp.client = batch_[static_cast<std::size_t>(r)].client;
    resp.arrival_us = batch_[static_cast<std::size_t>(r)].arrival_us;
    resp.done_us = now_us;
    resp.service_us = service_us;
    resp.batch = B;
    resp.h = s.h.row(0);
    sink(resp);
  }
  for (Session* s : lanes_) s->pinned = false;
  // Batch boundary: reclaim idle sessions. Arrival stamps are monotone
  // within a shard, so the newest stamp of this (FIFO) batch bounds
  // every future arrival — the sweep frees only sessions the lazy TTL
  // rule would restart anyway (value-neutral; session.h).
  sessions_.sweep_expired(batch_[static_cast<std::size_t>(B - 1)].arrival_us);
  return B;
}

void EngineShard::reset_stats() {
  stats_ = ShardStats{};
  engine_.reset_stats();
}

}  // namespace zss::serve
