#include "serve/shard.h"

#include <algorithm>
#include <ctime>

#include "num/parallel.h"

namespace zss::serve {

namespace {

// Thread CPU time where the platform has it (Linux, macOS); wall time
// otherwise. Used only for ShardStats::cpu_us accounting.
double thread_cpu_us() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EngineShard::EngineShard(const ServeModel& model, const BatchPolicy& policy,
                         sparse::EncoderConfig encoder, SessionTtl ttl,
                         core::QuantConfig quant, bool pipeline)
    : cells_(model.cells.begin(), model.cells.end()),
      pruners_(model.pruners.begin(), model.pruners.end()),
      embedding_(model.embedding),
      engine_(cells_, pruners_, encoder, quant),
      sessions_(engine_.hidden_dim(), ttl, engine_.layers()),
      batcher_(policy),
      pipeline_(pipeline && engine_.layers() > 1) {
  // A whole-batch quantile threshold would make a session's outputs
  // depend on its batch-mates — the one thing the serving determinism
  // guarantee cannot absorb (see the header note).
  for (const core::StatePruner* p : pruners_) {
    ZSS_EXPECTS(p->config().mode != core::PruneMode::kTargetSparsity);
  }
  if (embedding_ != nullptr) {
    ZSS_EXPECTS(embedding_->dim() == engine_.input_dim());
  }
  // Processed lanes pin (unevictable) as a batch is assembled, so a
  // capped store must be strictly larger than everything that can hold
  // a pin at once: one batch sequentially, up to layers() batches in
  // the pipelined wavefront. An unpinned LRU victim then always
  // exists, and it is never a pinned lane — which keeps eviction a
  // pure function of the request stream (session.h) and
  // eviction-vs-lane-pointer safety trivial.
  const num::Index pin_span =
      (pipeline_ ? engine_.layers() : 1) * policy.max_batch;
  ZSS_EXPECTS(ttl.max_sessions == 0 || ttl.max_sessions > pin_span);
  init(policy);
}

EngineShard::EngineShard(const nn::LstmCell& cell,
                         const core::StatePruner& pruner,
                         const BatchPolicy& policy,
                         sparse::EncoderConfig encoder, SessionTtl ttl,
                         core::QuantConfig quant)
    : cells_{&cell},
      pruners_{&pruner},
      embedding_(nullptr),
      engine_(cells_, pruners_, encoder, quant),
      sessions_(cell.hidden_dim(), ttl, 1),
      batcher_(policy),
      pipeline_(false) {
  ZSS_EXPECTS(pruner.config().mode != core::PruneMode::kTargetSparsity);
  ZSS_EXPECTS(ttl.max_sessions == 0 || ttl.max_sessions > policy.max_batch);
  init(policy);
}

void EngineShard::init(const BatchPolicy& policy) {
  const num::Index max_batch = policy.max_batch;
  const num::Index dx = engine_.input_dim();
  const num::Index dh = engine_.hidden_dim();
  const auto L = static_cast<std::size_t>(engine_.layers());
  engine_.reserve(max_batch);
  batch_.reserve(static_cast<std::size_t>(max_batch));
  lanes_.reserve(static_cast<std::size_t>(max_batch));
  row_digests_.reserve(static_cast<std::size_t>(max_batch));
  ids_.reserve(static_cast<std::size_t>(max_batch));
  x_.resize(max_batch, dx);
  h_.resize(L);
  c_.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    h_[l].resize(max_batch, dh);
    c_[l].resize(max_batch, dh);
  }
  dense_top_.resize(max_batch, dh);
  if (pipeline_) {
    flights_.resize(L);
    for (Flight& f : flights_) {
      f.requests.reserve(static_cast<std::size_t>(max_batch));
      f.lanes.reserve(static_cast<std::size_t>(max_batch));
      f.x.resize(max_batch, dx);
      f.ff[0].resize(max_batch, dh);
      f.ff[1].resize(max_batch, dh);
      f.hl.resize(max_batch, dh);
      f.cl.resize(max_batch, dh);
    }
  }
}

num::Index EngineShard::process_ready(std::int64_t now_us,
                                      const ResponseSink& sink) {
  if (!batcher_.ready(now_us)) return 0;
  return step_batch(now_us, sink);
}

num::Index EngineShard::flush(std::int64_t now_us, const ResponseSink& sink) {
  if (pipeline_) return flush_wavefront(now_us, sink);
  num::Index served = 0;
  while (num::Index n = step_batch(now_us, sink)) served += n;
  return served;
}

void EngineShard::build_input(const std::vector<Request>& requests,
                              num::Index batch, num::Matrix& x) {
  if (embedding_ != nullptr) {
    const num::Index vocab = embedding_->vocab();
    ids_.clear();
    for (num::Index r = 0; r < batch; ++r) {
      const num::Index token = requests[static_cast<std::size_t>(r)].token;
      ZSS_EXPECTS(token >= 0);
      ids_.push_back(token % vocab);
    }
    embedding_->forward(ids_, x);
  } else {
    const num::Index dx = engine_.input_dim();
    x.resize(batch, dx, 0.0f);
    for (num::Index r = 0; r < batch; ++r) {
      const num::Index token = requests[static_cast<std::size_t>(r)].token;
      ZSS_EXPECTS(token >= 0);
      x(r, token % dx) = 1.0f;
    }
  }
}

num::Index EngineShard::drop_expired(std::vector<Request>& requests,
                                     num::Index batch, std::int64_t now_us,
                                     const ResponseSink& sink) {
  // Deadline drops happen before any session is touched: a timed-out
  // request leaves no state transition, no digest fold and no journal
  // record, so a resuming client can safely re-drive it. Deadlines are
  // monotone within a session (same offset over monotone arrivals), so
  // answering the drops first preserves per-session response order.
  num::Index w = 0;
  for (num::Index r = 0; r < batch; ++r) {
    const Request& rq = requests[static_cast<std::size_t>(r)];
    if (rq.deadline_us > 0 && now_us > rq.deadline_us) {
      Response resp;
      resp.session = rq.session;
      resp.seq = rq.seq;
      resp.client = rq.client;
      resp.arrival_us = rq.arrival_us;
      resp.done_us = now_us;
      resp.timed_out = true;
      sink(resp);
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (w != r) requests[static_cast<std::size_t>(w)] = rq;
    ++w;
  }
  return w;
}

num::Index EngineShard::step_batch(std::int64_t now_us,
                                   const ResponseSink& sink) {
  const num::Index consumed = batcher_.pop_batch(batch_);
  if (consumed == 0) return 0;
  // The popped batch's newest stamp bounds every future arrival even
  // when deadline drops shrink the batch — sweep with it, not with the
  // filtered tail.
  const std::int64_t newest_arrival =
      batch_[static_cast<std::size_t>(consumed - 1)].arrival_us;
  const num::Index B = drop_expired(batch_, consumed, now_us, sink);
  if (B == 0) {
    sessions_.sweep_expired(newest_arrival);
    return consumed;
  }
  const num::Index dh = engine_.hidden_dim();
  const auto L = static_cast<std::size_t>(engine_.layers());
  const auto t0 = std::chrono::steady_clock::now();
  const double cpu0 = thread_cpu_us();

  lanes_.clear();
  // Lanes pin one at a time, in request order, exactly as their
  // get_or_create runs. Pinning exists for memory safety (an eviction
  // must never invalidate an earlier lane's Session pointer) and is
  // redundant for victim choice — get_or_create just moved every
  // processed lane to the LRU front, so with max_sessions > max_batch
  // the tail is always someone else. Deliberately NOT pinned: sessions
  // named by *later* lanes of this batch. An eviction decision may
  // only depend on the prefix of requests processed so far — never on
  // batch composition, which live serving and virtual-clock replay
  // legitimately disagree on. If the LRU tail has a request later in
  // this very batch, it is evicted and restarted exactly as a serial
  // request-at-a-time processor would decide (grouping-independence is
  // test-enforced: LruEvictionIsIndependentOfBatchGrouping).
  for (num::Index r = 0; r < B; ++r) {
    const Request& rq = batch_[static_cast<std::size_t>(r)];
    Session& s = sessions_.get_or_create(rq.session, rq.arrival_us);
    ++s.pinned;
    lanes_.push_back(&s);
  }

  build_input(batch_, B, x_);

  if (B == 1) {
    // Batch-of-one fast path: the session's own per-layer matrices go
    // straight into the engine — no state is gathered, scattered, or
    // copied.
    engine_.step(x_, lanes_[0]->h, lanes_[0]->c, &dense_top_);
  } else {
    for (std::size_t l = 0; l < L; ++l) {
      h_[l].reshape(B, dh);
      c_[l].reshape(B, dh);
      for (num::Index r = 0; r < B; ++r) {
        auto sh = lanes_[static_cast<std::size_t>(r)]->h[l].row(0);
        auto sc = lanes_[static_cast<std::size_t>(r)]->c[l].row(0);
        std::copy(sh.begin(), sh.end(), h_[l].row(r).begin());
        std::copy(sc.begin(), sc.end(), c_[l].row(r).begin());
      }
    }
    engine_.step(x_, h_, c_, &dense_top_);
    for (std::size_t l = 0; l < L; ++l) {
      for (num::Index r = 0; r < B; ++r) {
        auto sh = lanes_[static_cast<std::size_t>(r)]->h[l].row(0);
        auto sc = lanes_[static_cast<std::size_t>(r)]->c[l].row(0);
        std::copy(h_[l].row(r).begin(), h_[l].row(r).end(), sh.begin());
        std::copy(c_[l].row(r).begin(), c_[l].row(r).end(), sc.begin());
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double service_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  stats_.requests += B;
  ++stats_.batches;
  stats_.busy_us += service_us;
  stats_.cpu_us += thread_cpu_us() - cpu0;

  // Commit before delivery: every lane's step is folded into the
  // authoritative digest table and appended to the journal, then ONE
  // group-commit sync covers the whole batch — only then do responses
  // go out. A client can therefore never observe a response whose
  // state transition a crash could lose; crash-lost *uncommitted*
  // steps were never answered, so a resuming client re-drives them
  // onto exactly the pre-step state and gets bit-identical rows.
  row_digests_.clear();
  for (num::Index r = 0; r < B; ++r) {
    Session& s = *lanes_[static_cast<std::size_t>(r)];
    ++s.steps;
    const std::uint64_t row = digest_row(s.h.back().row(0));
    sessions_.commit_step(s, row);
    row_digests_.push_back(row);
  }
  sessions_.commit_batch();

  for (num::Index r = 0; r < B; ++r) {
    Session& s = *lanes_[static_cast<std::size_t>(r)];
    Response resp;
    resp.session = s.id;
    resp.seq = batch_[static_cast<std::size_t>(r)].seq;
    resp.client = batch_[static_cast<std::size_t>(r)].client;
    resp.arrival_us = batch_[static_cast<std::size_t>(r)].arrival_us;
    resp.done_us = now_us;
    resp.service_us = service_us;
    resp.batch = B;
    resp.h = s.h.back().row(0);
    resp.dense_h = dense_top_.row(r);
    resp.row_digest = row_digests_[static_cast<std::size_t>(r)];
    sink(resp);
  }
  for (Session* s : lanes_) --s->pinned;
  // Batch boundary: reclaim idle sessions. Arrival stamps are monotone
  // within a shard, so the newest stamp of this (FIFO) batch bounds
  // every future arrival — the sweep frees only sessions the lazy TTL
  // rule would restart anyway (value-neutral; session.h). Its kErase
  // records ride to the next batch's commit, which is safe for the
  // same reason the sweep itself is: resurrecting a swept session on
  // recovery changes no output bit.
  sessions_.sweep_expired(newest_arrival);
  sessions_.maybe_checkpoint();
  return consumed;
}

void EngineShard::admit(Flight& f) {
  f.lanes.clear();
  for (num::Index r = 0; r < f.batch; ++r) {
    const Request& rq = f.requests[static_cast<std::size_t>(r)];
    Session& s = sessions_.get_or_create(rq.session, rq.arrival_us);
    ++s.pinned;
    f.lanes.push_back(&s);
  }
  build_input(f.requests, f.batch, f.x);
  f.layer = 0;
  f.admitted = true;
  f.t0 = std::chrono::steady_clock::now();
}

void EngineShard::run_layer(Flight& f) {
  const num::Index l = f.layer;
  const num::Index dh = engine_.hidden_dim();
  const auto lz = static_cast<std::size_t>(l);
  const num::Matrix& input = l == 0 ? f.x : f.ff[static_cast<std::size_t>((l - 1) % 2)];
  num::Matrix* dense = &f.ff[static_cast<std::size_t>(l % 2)];
  if (f.batch == 1) {
    Session& s = *f.lanes[0];
    engine_.step_layer(l, input, s.h[lz], s.c[lz], dense);
  } else {
    f.hl.reshape(f.batch, dh);
    f.cl.reshape(f.batch, dh);
    for (num::Index r = 0; r < f.batch; ++r) {
      auto sh = f.lanes[static_cast<std::size_t>(r)]->h[lz].row(0);
      auto sc = f.lanes[static_cast<std::size_t>(r)]->c[lz].row(0);
      std::copy(sh.begin(), sh.end(), f.hl.row(r).begin());
      std::copy(sc.begin(), sc.end(), f.cl.row(r).begin());
    }
    engine_.step_layer(l, input, f.hl, f.cl, dense);
    for (num::Index r = 0; r < f.batch; ++r) {
      auto sh = f.lanes[static_cast<std::size_t>(r)]->h[lz].row(0);
      auto sc = f.lanes[static_cast<std::size_t>(r)]->c[lz].row(0);
      std::copy(f.hl.row(r).begin(), f.hl.row(r).end(), sh.begin());
      std::copy(f.cl.row(r).begin(), f.cl.row(r).end(), sc.begin());
    }
  }
  ++f.layer;
}

num::Index EngineShard::retire(Flight& f, std::int64_t now_us,
                               double service_us, const ResponseSink& sink) {
  const num::Index B = f.batch;
  stats_.requests += B;
  ++stats_.batches;
  const num::Matrix& top =
      f.ff[static_cast<std::size_t>((engine_.layers() - 1) % 2)];
  // Same commit-before-delivery ordering as step_batch.
  row_digests_.clear();
  for (num::Index r = 0; r < B; ++r) {
    Session& s = *f.lanes[static_cast<std::size_t>(r)];
    ++s.steps;
    const std::uint64_t row = digest_row(s.h.back().row(0));
    sessions_.commit_step(s, row);
    row_digests_.push_back(row);
  }
  sessions_.commit_batch();
  for (num::Index r = 0; r < B; ++r) {
    Session& s = *f.lanes[static_cast<std::size_t>(r)];
    Response resp;
    resp.session = s.id;
    resp.seq = f.requests[static_cast<std::size_t>(r)].seq;
    resp.client = f.requests[static_cast<std::size_t>(r)].client;
    resp.arrival_us = f.requests[static_cast<std::size_t>(r)].arrival_us;
    resp.done_us = now_us;
    resp.service_us = service_us;
    resp.batch = B;
    resp.h = s.h.back().row(0);
    resp.dense_h = top.row(r);
    resp.row_digest = row_digests_[static_cast<std::size_t>(r)];
    sink(resp);
  }
  for (Session* s : f.lanes) --s->pinned;
  // Value-neutral sweep with this flight's newest stamp — identical to
  // the stamp the sequential schedule would sweep with at this batch's
  // boundary. Sessions pinned by deeper in-flight batches are skipped
  // (they carry newer arrivals anyway).
  sessions_.sweep_expired(
      f.requests[static_cast<std::size_t>(B - 1)].arrival_us);
  sessions_.maybe_checkpoint();
  f.batch = 0;
  f.admitted = false;
  f.layer = 0;
  return B;
}

// The layer wavefront. Invariants at every tick start:
//   * active flights hold strictly descending layer indices
//     (front = deepest), so concurrent run_layer calls always hit
//     DIFFERENT per-layer engines — disjoint scratch, no locking;
//   * at most one flight is admitted per tick, which is what creates
//     and preserves the descending-layer property;
//   * per layer l, batch t's step runs a full tick before batch t+1's,
//     so every layer's recurrence order equals the sequential
//     schedule's — the bit-identity argument (shard.h).
// Admission is fenced when the candidate batch would lazily TTL-reset
// a session an in-flight batch has pinned: sequentially that reset
// happens only after the in-flight batch's response is computed, so
// the wavefront drains before admitting (rare — a client idling past
// its TTL and returning within L batches of itself).
num::Index EngineShard::flush_wavefront(std::int64_t now_us,
                                        const ResponseSink& sink) {
  const auto L = static_cast<std::size_t>(engine_.layers());
  const std::int64_t ttl_us = sessions_.ttl().ttl_us;
  num::Index served = 0;
  // Ring pointers in admission order: head = deepest (next to retire),
  // tail = next slot to admit into. A popped-but-hazard-fenced batch
  // stays parked in the tail slot, so pop order == admission order ==
  // retirement order unconditionally.
  std::size_t head = 0;
  std::size_t tail = 0;
  num::Index active = 0;  // flights in the wavefront
  num::Index timed_out = 0;
  while (true) {
    if (active < static_cast<num::Index>(L)) {
      Flight& cand = flights_[tail];
      if (cand.batch == 0) {
        cand.batch = batcher_.pop_batch(cand.requests);
        if (cand.batch > 0) {
          const std::int64_t newest =
              cand.requests[static_cast<std::size_t>(cand.batch - 1)]
                  .arrival_us;
          const num::Index kept =
              drop_expired(cand.requests, cand.batch, now_us, sink);
          timed_out += cand.batch - kept;
          cand.batch = kept;
          if (kept == 0) {
            // Whole batch expired: nothing to admit, but the boundary
            // still happened — sweep and try the next batch (active may
            // be 0 here with requests still queued).
            sessions_.sweep_expired(newest);
            continue;
          }
        }
      }
      if (cand.batch > 0) {
        bool hazard = false;
        if (ttl_us >= 0 && active > 0) {
          for (num::Index r = 0; r < cand.batch && !hazard; ++r) {
            const Request& rq = cand.requests[static_cast<std::size_t>(r)];
            const Session* s = sessions_.find(rq.session);
            hazard = s != nullptr && s->pinned > 0 &&
                     rq.arrival_us - s->last_arrival_us > ttl_us;
          }
        }
        if (!hazard) {
          admit(cand);
          tail = (tail + 1) % L;
          ++active;
        }
      }
    }
    if (active == 0) break;

    const auto t0 = std::chrono::steady_clock::now();
    const double cpu0 = thread_cpu_us();
    // One tick: every active flight advances one layer. Grain 1 so
    // even two flights split across workers; with one worker this is
    // the same calls in sequence — identical bits either way.
    num::parallel_for(
        0, active,
        [&](num::Index b, num::Index e) {
          for (num::Index i = b; i < e; ++i) {
            run_layer(flights_[(head + static_cast<std::size_t>(i)) % L]);
          }
        },
        /*grain=*/1);
    stats_.busy_us += std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    stats_.cpu_us += thread_cpu_us() - cpu0;

    Flight& front = flights_[head];
    if (front.admitted && front.layer == engine_.layers()) {
      const double service_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - front.t0)
              .count();
      served += retire(front, now_us, service_us, sink);
      head = (head + 1) % L;
      --active;
    }
  }
  return served + timed_out;
}

void EngineShard::reset_stats() {
  stats_ = ShardStats{};
  engine_.reset_stats();
}

}  // namespace zss::serve
