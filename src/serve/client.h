// Blocking line-buffered client for the serving protocol.
//
// The test/tool-side counterpart of serve/frontend.h: connects over
// UNIX or TCP, sends protocol lines, reads '\n'-terminated responses
// with a poll()-based timeout. Deliberately simple — one blocking
// socket per ClientConn, no multiplexing — because its consumers are
// correctness tests (frontend_test, frontend_fuzz_test) and the CI
// load generator (tools/zss_loadgen.cc), where a thread per client is
// the honest model of independent clients. bench_serving builds its
// own nonblocking mux to hold a thousand of these open at once.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace zss::serve {

/// One protocol connection. Movable, not copyable; closes on destroy.
class ClientConn {
 public:
  ClientConn() = default;
  ~ClientConn() { close(); }

  ClientConn(ClientConn&& other) noexcept;
  ClientConn& operator=(ClientConn&& other) noexcept;
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  /// Connect to a UNIX socket path / a TCP host:port. False on failure
  /// (error explains). Reconnecting an open ClientConn closes it first.
  bool connect_unix(const std::string& path, std::string* error = nullptr);
  bool connect_tcp(const std::string& host, int port,
                   std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends `line` plus the terminating '\n'. Blocking; false on any
  /// send failure (connection is closed). SIGPIPE-safe (MSG_NOSIGNAL).
  bool send_line(std::string_view line);

  /// Reads the next '\n'-terminated line (newline stripped, CR too)
  /// into `out`. False on EOF, error or timeout; eof() distinguishes
  /// an orderly close from the rest. timeout_ms < 0 = wait forever.
  bool read_line(std::string* out, int timeout_ms = -1);

  /// True after read_line returned false because the server closed the
  /// stream cleanly (as opposed to timeout or error).
  bool eof() const { return eof_; }

  /// Half-close: no more sends, reads still drain what the server owes
  /// (the half-open path the front end's churn fuzz exercises).
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
  bool eof_ = false;
  std::string rbuf_;
};

}  // namespace zss::serve
