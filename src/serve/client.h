// Blocking line-buffered client for the serving protocol.
//
// The test/tool-side counterpart of serve/frontend.h: connects over
// UNIX or TCP, sends protocol lines, reads '\n'-terminated responses
// with a poll()-based timeout. Deliberately simple — one blocking
// socket per ClientConn, no multiplexing — because its consumers are
// correctness tests (frontend_test, frontend_fuzz_test) and the CI
// load generator (tools/zss_loadgen.cc), where a thread per client is
// the honest model of independent clients. bench_serving builds its
// own nonblocking mux to hold a thousand of these open at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace zss::serve {

/// One protocol connection. Movable, not copyable; closes on destroy.
class ClientConn {
 public:
  ClientConn() = default;
  ~ClientConn() { close(); }

  ClientConn(ClientConn&& other) noexcept;
  ClientConn& operator=(ClientConn&& other) noexcept;
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  /// Connect to a UNIX socket path / a TCP host:port. False on failure
  /// (error explains). Reconnecting an open ClientConn closes it first.
  bool connect_unix(const std::string& path, std::string* error = nullptr);
  bool connect_tcp(const std::string& host, int port,
                   std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends `line` plus the terminating '\n'. Blocking; false on any
  /// send failure (connection is closed). SIGPIPE-safe (MSG_NOSIGNAL).
  bool send_line(std::string_view line);

  /// Reads the next '\n'-terminated line (newline stripped, CR too)
  /// into `out`. False on EOF, error or timeout; eof() distinguishes
  /// an orderly close from the rest. timeout_ms < 0 = wait forever.
  bool read_line(std::string* out, int timeout_ms = -1);

  /// True after read_line returned false because the server closed the
  /// stream cleanly (as opposed to timeout or error).
  bool eof() const { return eof_; }

  /// Half-close: no more sends, reads still drain what the server owes
  /// (the half-open path the front end's churn fuzz exercises).
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
  bool eof_ = false;
  std::string rbuf_;
};

/// Bounded exponential backoff: base_ms, 2*base_ms, 4*base_ms, ...
/// capped at max_ms per delay and max_attempts total. Deterministic
/// (no jitter) — these clients are test drivers and the schedule
/// showing up identically in two logs is a feature.
struct BackoffPolicy {
  int base_ms = 50;
  int max_ms = 2000;
  int max_attempts = 40;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}) : policy_(policy) {}

  /// Delay before the next attempt in ms (0 for the first), or -1 when
  /// max_attempts is exhausted — the loop must give up, not spin.
  int next_ms();
  void reset() { attempt_ = 0; }
  int attempts() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  int attempt_ = 0;
};

/// Committed server-side position of one session — the `pos` reply to
/// `sync` (serve/protocol.h). steps counts responses the server has
/// durably committed; digest is the rolling session digest at that
/// position.
struct SyncedPos {
  std::uint64_t steps = 0;
  std::uint64_t digest = 0;
};

/// Where a ResumingClient (re)connects: a UNIX path, or a TCP
/// host:port when tcp_port >= 0 (TCP wins when both are set).
struct ResumeEndpoint {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
};

/// A ClientConn that survives server restarts: connect() retries with
/// bounded exponential backoff until the server greets it, and sync()
/// asks where a session's committed prefix ends so the caller can
/// re-drive exactly the uncommitted suffix (idempotent resume — the
/// client half of the crash-recovery contract in docs/serving.md).
///
/// Usage after any send/read failure:
///   1. connect(&err)            — reconnect with backoff
///   2. sync(sid, &pos)          — learn the committed position
///   3. re-send tokens [pos.steps, end) — nothing is ever applied twice
class ResumingClient {
 public:
  explicit ResumingClient(ResumeEndpoint endpoint, BackoffPolicy backoff = {})
      : endpoint_(endpoint), backoff_(backoff) {}

  /// (Re)connects with bounded exponential backoff and consumes the
  /// server's "hi" greeting. False when max_attempts is exhausted or
  /// the greeting never arrives (error explains).
  bool connect(std::string* error = nullptr);

  bool connected() const { return conn_.connected(); }
  ClientConn& conn() { return conn_; }
  std::uint64_t reconnects() const { return reconnects_; }

  bool send_line(std::string_view line) { return conn_.send_line(line); }
  bool read_line(std::string* out, int timeout_ms) {
    return conn_.read_line(out, timeout_ms);
  }

  /// "sync <session>" round trip. Skips unrelated lines still in
  /// flight on the stream (stale "ok"/"err", a "pos" for another
  /// session) until this session's "pos" arrives. False on EOF, error
  /// or timeout — reconnect and retry.
  bool sync(std::uint64_t session, SyncedPos* out, int timeout_ms = 15000,
            std::string* error = nullptr);

 private:
  ResumeEndpoint endpoint_;
  BackoffPolicy backoff_;
  ClientConn conn_;
  std::uint64_t reconnects_ = 0;
  bool ever_connected_ = false;
};

}  // namespace zss::serve
