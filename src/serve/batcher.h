// Request batching policy — coalescing single-token requests into one
// SparseLstmEngine::step() call.
//
// With the per-lane batched skip path (num::sparse_accum_rows_multi),
// batching recurrent inference is a straightforward win again: each
// lane accumulates exactly its own kept positions, so the effectual
// work of a batch is the sum of its lanes' per-lane work — adding a
// request to a batch no longer destroys the sparsity every other lane
// came for. The batch-intersection cap this batcher carried while the
// engine skipped only the intersection of the batch's zero patterns
// (kept(B) ~= 1 - s^B, the paper's Fig. 7 — reproduced by
// bench/fig7_batch_sparsity.cc) is therefore retired; docs/serving.md
// records the policy history. A batch now closes on two knobs and one
// structural rule:
//   * it reached max_batch (staging memory, worst-case service time),
//   * the oldest pending request waited max_wait_us (latency floor),
//   * a batch never contains the same session twice — a session's
//     second token must see the state its first one produced — so a
//     batch is always the longest conflict-free FIFO prefix max_batch
//     allows.
//
// The batcher is deterministic and clock-free: callers pass `now_us`
// explicitly (a virtual trace clock in replay/tests, a real clock in a
// live server), so the same request stream and policy always produce
// the same batch boundaries.
#pragma once

#include <vector>

#include "num/types.h"
#include "serve/request.h"

namespace zss::serve {

struct BatchPolicy {
  num::Index max_batch = 8;
  std::int64_t max_wait_us = 200;
};

class RequestBatcher {
 public:
  explicit RequestBatcher(const BatchPolicy& policy);

  /// Appends a request (FIFO). Grows the ring only when full — reserve
  /// capacity up front for allocation-free steady state.
  void enqueue(const Request& r);

  /// Pre-sizes the ring for `n` pending requests.
  void reserve(num::Index n);

  num::Index pending() const { return static_cast<num::Index>(count_); }
  std::int64_t oldest_arrival_us() const;

  /// True when a batch should be served now: the conflict-free prefix
  /// reached max_batch, a same-session conflict blocks further growth
  /// anyway, or the oldest request exhausted max_wait_us.
  bool ready(std::int64_t now_us) const;

  /// Pops the next batch (the conflict-free FIFO prefix, at most
  /// max_batch) into `out` (cleared first). Returns its size; 0 when
  /// nothing is pending. Ignores max_wait — pair with ready(), or call
  /// directly to flush.
  num::Index pop_batch(std::vector<Request>& out);

  const BatchPolicy& policy() const { return policy_; }

 private:
  num::Index conflict_free_prefix(num::Index cap) const;
  const Request& at(std::size_t i) const;  // i-th pending, FIFO order

  BatchPolicy policy_;
  std::vector<Request> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace zss::serve
