// Request batching policy — coalescing single-token requests into one
// SparseLstmEngine::step() call.
//
// Batching recurrent inference is a measured trade-off, not a free win:
// the engine's skip logic works on the *intersection* of the batch's
// zero patterns (a position is fetched when ANY lane keeps it), so the
// observed sparsity falls roughly as kept(B) = 1 - s^B for per-lane
// sparsity s (the paper's Fig. 7, reproduced by bench/fig7_batch_sparsity
// .cc). This batcher therefore closes a batch on three conditions:
//   * it reached max_batch (classic throughput batching),
//   * the oldest pending request waited max_wait_us (latency floor),
//   * growing it further would push the *predicted* kept fraction past
//     max_kept_fraction, using the engine's per-lane sparsity feedback
//     (SparseLstmEngine::last_step_stats().lane_sparsity, EWMA-smoothed).
// A batch also never contains the same session twice — a session's
// second token must see the state its first one produced — so a batch is
// always the longest conflict-free FIFO prefix the caps allow.
//
// The batcher is deterministic and clock-free: callers pass `now_us`
// explicitly (a virtual trace clock in replay/tests, a real clock in a
// live server), so the same request stream and policy always produce
// the same batch boundaries.
#pragma once

#include <vector>

#include "num/types.h"
#include "serve/request.h"

namespace zss::serve {

struct BatchPolicy {
  num::Index max_batch = 8;
  std::int64_t max_wait_us = 200;
  /// Close the batch before the predicted intersected kept fraction
  /// exceeds this. 1.0 disables the cap (a batch of one always serves,
  /// whatever the prediction says).
  double max_kept_fraction = 1.0;
  /// Weight of the newest lane-sparsity observation in the EWMA.
  double sparsity_ewma = 0.25;
};

class RequestBatcher {
 public:
  explicit RequestBatcher(const BatchPolicy& policy);

  /// Appends a request (FIFO). Grows the ring only when full — reserve
  /// capacity up front for allocation-free steady state.
  void enqueue(const Request& r);

  /// Pre-sizes the ring for `n` pending requests.
  void reserve(num::Index n);

  num::Index pending() const { return static_cast<num::Index>(count_); }
  std::int64_t oldest_arrival_us() const;

  /// Largest batch the intersection cap currently allows, in
  /// [1, max_batch]. With no feedback yet the cap is optimistic
  /// (max_batch); it tightens as observe_lane_sparsity() reports.
  num::Index effective_cap() const;

  /// Kept fraction the current sparsity estimate predicts for a batch
  /// of `b` independent lanes: 1 - s^b.
  double predicted_kept_fraction(num::Index b) const;

  /// True when a batch should be served now: the conflict-free prefix
  /// reached the effective cap, a same-session conflict blocks further
  /// growth anyway, or the oldest request exhausted max_wait_us.
  bool ready(std::int64_t now_us) const;

  /// Pops the next batch (the conflict-free FIFO prefix, at most
  /// effective_cap()) into `out` (cleared first). Returns its size; 0
  /// when nothing is pending. Ignores max_wait — pair with ready(), or
  /// call directly to flush.
  num::Index pop_batch(std::vector<Request>& out);

  /// Feeds back the per-lane sparsity of the state the engine just
  /// stored (SparseLstmEngine::last_step_stats().lane_sparsity).
  void observe_lane_sparsity(double s);

  double lane_sparsity_estimate() const { return lane_sparsity_; }
  const BatchPolicy& policy() const { return policy_; }

 private:
  num::Index conflict_free_prefix(num::Index cap) const;
  const Request& at(std::size_t i) const;  // i-th pending, FIFO order

  BatchPolicy policy_;
  std::vector<Request> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  double lane_sparsity_ = 0.0;
  bool have_observation_ = false;
};

}  // namespace zss::serve
