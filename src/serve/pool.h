// Sharded engine pool — hash-pinned sessions over N independent shards.
//
// Sessions are pinned to shards by a SplitMix64 hash of their id, so a
// session's whole request stream is served by one engine in arrival
// order (the invariant per-session determinism rests on). Shards share
// nothing mutable — the cell and pruner are read-only — which gives
// the pool the same property num::parallel_for gives the kernels:
// results are bit-identical whether the shards run sequentially
// (process_ready / flush, the virtual-time replay path) or one thread
// per shard (drain_parallel, the throughput path), and bit-identical
// across shard counts (only the *grouping* of requests into batches
// changes, and grouping cannot change values — docs/serving.md).
#pragma once

#include <deque>
#include <span>

#include "serve/shard.h"

namespace zss::serve {

struct PoolConfig {
  num::Index shards = 1;
  BatchPolicy policy;
  sparse::EncoderConfig encoder;
  /// Session eviction policy, applied per shard (serve/session.h).
  SessionTtl session_ttl;
};

class EnginePool {
 public:
  /// Borrows cell and pruner; every shard packs its own copy of the
  /// weights (cache locality per worker) but shares the originals.
  EnginePool(const nn::LstmCell& cell, const core::StatePruner& pruner,
             const PoolConfig& config);

  num::Index num_shards() const { return static_cast<num::Index>(shards_.size()); }
  num::Index shard_of(SessionId id) const;

  EngineShard& shard(num::Index i) { return shards_[static_cast<std::size_t>(i)]; }
  const EngineShard& shard(num::Index i) const {
    return shards_[static_cast<std::size_t>(i)];
  }

  /// Routes a request to its session's shard.
  void enqueue(const Request& r);

  /// Sequentially serves at most one due batch per shard. Returns total
  /// requests served; call in a loop until 0 to settle a timestep.
  num::Index process_ready(std::int64_t now_us, const ResponseSink& sink);

  /// Sequentially drains every queue (ignores max-wait).
  num::Index flush(std::int64_t now_us, const ResponseSink& sink);

  /// Drains every shard on its own thread (shared-nothing, so outputs
  /// are bit-identical to flush()). `shard_sinks` must provide one sink
  /// per shard; each is called only from that shard's thread.
  num::Index drain_parallel(std::int64_t now_us,
                            std::span<const ResponseSink> shard_sinks);

  num::Index pending() const;

  /// Starts a new measurement epoch on every shard (shard counters and
  /// engine cumulative stats).
  void reset_stats();

 private:
  // Deque so constructing shard k never relocates shard k-1 (a shard's
  // engine hands out workspace references it must keep valid).
  std::deque<EngineShard> shards_;
};

}  // namespace zss::serve
