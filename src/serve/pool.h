// Sharded engine pool — hash-pinned sessions over N independent shards.
//
// Sessions are pinned to shards by a SplitMix64 hash of their id, so a
// session's whole request stream is served by one engine in arrival
// order (the invariant per-session determinism rests on). Shards share
// nothing mutable — the cell and pruner are read-only — which gives
// the pool the same property num::parallel_for gives the kernels:
// results are bit-identical whether the shards run sequentially
// (process_ready / flush, the virtual-time replay path) or one thread
// per shard (drain_parallel, the throughput path), and bit-identical
// across shard counts (only the *grouping* of requests into batches
// changes, and grouping cannot change values — docs/serving.md).
//
// Durability ladder (docs/serving.md "Crash recovery"): with a spill
// dir the LRU cap tiers to disk (PR 6); with the journal enabled on
// top, every shard also write-ahead-logs its committed session
// transitions and the pool cold-recovers the full session population —
// sessions, LRU order, digest tables — at construction. The pool also
// supports rebuild_shard(): tearing one crashed/wedged shard down and
// re-recovering it from its own journal while the others keep serving
// (the supervisor's repair primitive, serve/supervisor.h).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/shard.h"
#include "store/io.h"
#include "store/journal.h"
#include "store/segment_store.h"

namespace zss::serve {

/// Durable spill tier of the pool (docs/store.md). When `dir` is
/// non-empty every shard gets its own segment file "<dir>/shard_<i>.seg"
/// — shared-nothing carries through to disk — and its LRU cap becomes a
/// tiering policy instead of a forget policy.
struct SpillConfig {
  std::string dir;  // empty = no spill tier
  /// Spill h through the paper's offset encoding (store/segment_store.h
  /// explains the -0.0 dense fallback that keeps round-trips bit-exact).
  bool encoded = false;
  /// Filesystem to use. Null = the real one (PosixEnv); tests inject
  /// MemEnv / fault wrappers. Borrowed, must outlive the pool.
  store::Env* env = nullptr;
  /// Write-ahead journal per shard ("<dir>/shard_<i>.jnl" + ".ckpt"):
  /// every committed session transition is logged and the pool
  /// cold-recovers the full population at construction. Requires a
  /// non-empty `dir`. This is --durability=journal.
  bool journal = false;
  /// Group-commit fsync policy of the journals (store/journal.h).
  store::JournalSync journal_sync = store::JournalSync::kBatch;
  /// Journal size past which a shard checkpoints at a batch boundary.
  std::uint64_t journal_checkpoint_bytes = std::uint64_t{4} << 20;
};

struct PoolConfig {
  num::Index shards = 1;
  BatchPolicy policy;
  sparse::EncoderConfig encoder;
  /// Session eviction policy, applied per shard (serve/session.h).
  SessionTtl session_ttl;
  SpillConfig spill;
  /// Engine datapath for every shard: default fp32, or the int8
  /// quantized mode (core::QuantConfig::int8()); shard-count
  /// determinism holds for both (tests/serve/shard_determinism_test.cc).
  core::QuantConfig quant;
  /// Layer-pipelined flush on multi-layer models (serve/shard.h's
  /// wavefront). Ignored for single-layer models. Bit-identical to the
  /// sequential schedule at any shard count — only wall-clock changes.
  bool pipeline = false;
};

class EnginePool {
 public:
  /// Serves `model` on every shard. The pool copies the pointer lists
  /// (and name/vocab) so it can rebuild a shard later; the pointees —
  /// cells, pruners, embedding — must outlive the pool.
  EnginePool(const ServeModel& model, const PoolConfig& config);

  /// Single-layer convenience (synthetic-load benches, most tests):
  /// borrows cell and pruner, serves one-hot inputs.
  EnginePool(const nn::LstmCell& cell, const core::StatePruner& pruner,
             const PoolConfig& config);

  num::Index num_shards() const { return static_cast<num::Index>(shards_.size()); }
  num::Index shard_of(SessionId id) const;

  EngineShard& shard(num::Index i) { return *shards_[static_cast<std::size_t>(i)]; }
  const EngineShard& shard(num::Index i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  /// Routes a request to its session's shard.
  void enqueue(const Request& r);

  /// Sequentially serves at most one due batch per shard. Returns total
  /// requests consumed; call in a loop until 0 to settle a timestep.
  num::Index process_ready(std::int64_t now_us, const ResponseSink& sink);

  /// Sequentially drains every queue (ignores max-wait).
  num::Index flush(std::int64_t now_us, const ResponseSink& sink);

  /// Drains every shard on its own thread (shared-nothing, so outputs
  /// are bit-identical to flush()). `shard_sinks` must provide one sink
  /// per shard; each is called only from that shard's thread.
  num::Index drain_parallel(std::int64_t now_us,
                            std::span<const ResponseSink> shard_sinks);

  num::Index pending() const;

  /// Starts a new measurement epoch on every shard (shard counters and
  /// engine cumulative stats).
  void reset_stats();

  /// Tears shard `i` down and rebuilds it from its own durable state:
  /// fresh engine + session store, spill segment reopened, journal
  /// replayed (sessions, LRU order, digest table — exactly what the
  /// crashed/wedged shard last committed). The old shard, spill store
  /// and journal move to a graveyard rather than being destroyed, so a
  /// truly wedged thread still inside the old shard cannot touch freed
  /// memory. The caller must guarantee no *cooperating* thread touches
  /// shard `i` during the call (the supervisor quarantines it first).
  void rebuild_shard(num::Index i);

  /// The shard's spill store, or null when no tier is configured (or
  /// its open failed and the shard runs RAM-only).
  store::SegmentStore* spill_store(num::Index i) {
    return spills_.empty() ? nullptr
                           : spills_[static_cast<std::size_t>(i)].get();
  }
  const store::SegmentStore* spill_store(num::Index i) const {
    return spills_.empty() ? nullptr
                           : spills_[static_cast<std::size_t>(i)].get();
  }

  /// The shard's write-ahead journal, or null when --durability is not
  /// `journal` (or its open failed and the shard runs undurably).
  store::Journal* journal(num::Index i) {
    return journals_.empty() ? nullptr
                             : journals_[static_cast<std::size_t>(i)].get();
  }
  const store::Journal* journal(num::Index i) const {
    return journals_.empty() ? nullptr
                             : journals_[static_cast<std::size_t>(i)].get();
  }

  /// Union of the shards' authoritative digest tables. Sessions are
  /// hash-pinned, so the per-shard tables are disjoint and the union
  /// is exact. Thread-safe (each store's digest mutex).
  DigestTable merged_digests() const;

  /// Newest arrival stamp any shard's journal recovered — the floor a
  /// restarted LiveServer must stamp new arrivals above so per-shard
  /// arrivals stay monotone across the crash (serve/session.h's
  /// eviction determinism needs monotone stamps). 0 when nothing was
  /// recovered.
  std::int64_t recovered_max_arrival_us() const {
    return recovered_max_arrival_us_;
  }

  /// Total sessions recovered into RAM at construction (diagnostics).
  std::uint64_t recovered_sessions() const { return recovered_sessions_; }

  /// Orphaned .tmp files removed across all stores at open — debris of
  /// a crashed instance, surfaced for the startup diagnostics.
  std::uint64_t orphans_removed() const;

  /// Identity of the model every shard serves (protocol stat line).
  /// Immutable after construction, so concurrent readers need no lock.
  const ModelInfo& model_info() const { return model_info_; }

 private:
  void build_shards(const PoolConfig& config);
  std::unique_ptr<EngineShard> make_shard() const;
  void attach_stores(num::Index i);

  // unique_ptr so rebuild_shard can swap one slot without relocating
  // the others (a shard's engine hands out workspace references it
  // must keep valid).
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::unique_ptr<store::PosixEnv> owned_env_;
  store::Env* env_ = nullptr;  // spill/journal filesystem (if any)
  std::vector<std::unique_ptr<store::SegmentStore>> spills_;
  std::vector<std::unique_ptr<store::Journal>> journals_;
  // Retired by rebuild_shard, destroyed with the pool: a wedged thread
  // abandoned inside an old shard must never see freed memory.
  std::vector<std::unique_ptr<EngineShard>> shard_graveyard_;
  std::vector<std::unique_ptr<store::SegmentStore>> spill_graveyard_;
  std::vector<std::unique_ptr<store::Journal>> journal_graveyard_;
  // The model, re-owned: ServeModel is a span view, so rebuild_shard
  // needs the pool to keep its own backing lists (pointees still
  // borrowed from the caller).
  std::vector<const nn::LstmCell*> cells_;
  std::vector<const core::StatePruner*> pruners_;
  const nn::Embedding* embedding_ = nullptr;
  std::string model_name_;
  num::Index model_vocab_ = 0;
  PoolConfig config_;
  ModelInfo model_info_;
  std::int64_t recovered_max_arrival_us_ = 0;
  std::uint64_t recovered_sessions_ = 0;
};

}  // namespace zss::serve
