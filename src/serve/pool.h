// Sharded engine pool — hash-pinned sessions over N independent shards.
//
// Sessions are pinned to shards by a SplitMix64 hash of their id, so a
// session's whole request stream is served by one engine in arrival
// order (the invariant per-session determinism rests on). Shards share
// nothing mutable — the cell and pruner are read-only — which gives
// the pool the same property num::parallel_for gives the kernels:
// results are bit-identical whether the shards run sequentially
// (process_ready / flush, the virtual-time replay path) or one thread
// per shard (drain_parallel, the throughput path), and bit-identical
// across shard counts (only the *grouping* of requests into batches
// changes, and grouping cannot change values — docs/serving.md).
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <string>

#include "serve/shard.h"
#include "store/io.h"
#include "store/segment_store.h"

namespace zss::serve {

/// Durable spill tier of the pool (docs/store.md). When `dir` is
/// non-empty every shard gets its own segment file "<dir>/shard_<i>.seg"
/// — shared-nothing carries through to disk — and its LRU cap becomes a
/// tiering policy instead of a forget policy.
struct SpillConfig {
  std::string dir;  // empty = no spill tier
  /// Spill h through the paper's offset encoding (store/segment_store.h
  /// explains the -0.0 dense fallback that keeps round-trips bit-exact).
  bool encoded = false;
  /// Filesystem to use. Null = the real one (PosixEnv); tests inject
  /// MemEnv / fault wrappers. Borrowed, must outlive the pool.
  store::Env* env = nullptr;
};

struct PoolConfig {
  num::Index shards = 1;
  BatchPolicy policy;
  sparse::EncoderConfig encoder;
  /// Session eviction policy, applied per shard (serve/session.h).
  SessionTtl session_ttl;
  SpillConfig spill;
  /// Engine datapath for every shard: default fp32, or the int8
  /// quantized mode (core::QuantConfig::int8()); shard-count
  /// determinism holds for both (tests/serve/shard_determinism_test.cc).
  core::QuantConfig quant;
  /// Layer-pipelined flush on multi-layer models (serve/shard.h's
  /// wavefront). Ignored for single-layer models. Bit-identical to the
  /// sequential schedule at any shard count — only wall-clock changes.
  bool pipeline = false;
};

class EnginePool {
 public:
  /// Serves `model` on every shard (cells/pruners/embedding borrowed,
  /// pointer lists copied per shard; the pointees must outlive the
  /// pool). Every shard packs its own copy of the weights (cache
  /// locality per worker) but shares the originals.
  EnginePool(const ServeModel& model, const PoolConfig& config);

  /// Single-layer convenience (synthetic-load benches, most tests):
  /// borrows cell and pruner, serves one-hot inputs.
  EnginePool(const nn::LstmCell& cell, const core::StatePruner& pruner,
             const PoolConfig& config);

  num::Index num_shards() const { return static_cast<num::Index>(shards_.size()); }
  num::Index shard_of(SessionId id) const;

  EngineShard& shard(num::Index i) { return shards_[static_cast<std::size_t>(i)]; }
  const EngineShard& shard(num::Index i) const {
    return shards_[static_cast<std::size_t>(i)];
  }

  /// Routes a request to its session's shard.
  void enqueue(const Request& r);

  /// Sequentially serves at most one due batch per shard. Returns total
  /// requests served; call in a loop until 0 to settle a timestep.
  num::Index process_ready(std::int64_t now_us, const ResponseSink& sink);

  /// Sequentially drains every queue (ignores max-wait).
  num::Index flush(std::int64_t now_us, const ResponseSink& sink);

  /// Drains every shard on its own thread (shared-nothing, so outputs
  /// are bit-identical to flush()). `shard_sinks` must provide one sink
  /// per shard; each is called only from that shard's thread.
  num::Index drain_parallel(std::int64_t now_us,
                            std::span<const ResponseSink> shard_sinks);

  num::Index pending() const;

  /// Starts a new measurement epoch on every shard (shard counters and
  /// engine cumulative stats).
  void reset_stats();

  /// The shard's spill store, or null when no tier is configured (or
  /// its open failed and the shard runs RAM-only).
  store::SegmentStore* spill_store(num::Index i) {
    return spills_.empty() ? nullptr
                           : spills_[static_cast<std::size_t>(i)].get();
  }

  /// Identity of the model every shard serves (protocol stat line).
  /// Immutable after construction, so concurrent readers need no lock.
  const ModelInfo& model_info() const { return model_info_; }

 private:
  void build_shards(const ServeModel& model, const PoolConfig& config);

  // Deque so constructing shard k never relocates shard k-1 (a shard's
  // engine hands out workspace references it must keep valid).
  std::deque<EngineShard> shards_;
  std::unique_ptr<store::PosixEnv> owned_env_;
  std::vector<std::unique_ptr<store::SegmentStore>> spills_;
  // Backing storage for the legacy single-layer ctor's pointer spans.
  std::vector<const nn::LstmCell*> legacy_cells_;
  std::vector<const core::StatePruner*> legacy_pruners_;
  ModelInfo model_info_;
};

}  // namespace zss::serve
