// Serving sessions — per-client recurrent state owned outside the engine.
//
// A Session is one client's conversation with the model: its h/c state
// (1 x dh each), a step counter, and the id requests address it by. The
// SparseLstmEngine never owns state (its h/c parameters are bound per
// call by reference — core/sparse_inference.h), so the serving layer
// keeps exactly one Session per client and swaps its matrices into a
// step with no element copies on the batch-of-one path; batched steps
// gather/scatter the rows explicitly (serve/shard.cc), which is one of
// the two costs the batching policy trades against (docs/serving.md).
//
// Eviction (docs/serving.md "Live mode"): a store can be bounded by a
// per-session TTL and an LRU cap so millions of transient clients do
// not exhaust memory. Both rules are *arrival-driven* — they compare
// request arrival stamps, never a wall clock read of their own — so
// every eviction decision is a pure function of the request stream and
// a recorded live run replays bit-identically through the virtual
// clock path:
//   * TTL is lazy: a session whose next request arrives more than
//     ttl_us after its previous one restarts from zero state (the
//     defined start of the recurrence) — decided per session from its
//     own gaps, so it cannot depend on batching or shard count.
//   * The physical sweep (sweep_expired) frees memory for sessions the
//     lazy rule would reset anyway: arrivals are monotone per shard,
//     so any future request of a swept session is guaranteed to arrive
//     past its TTL. Sweeping is therefore value-neutral — it may run
//     at any batch boundary without changing a single output bit.
//   * The LRU cap evicts the least-recently-arrived *alive* session
//     when a new one must be created at capacity, where alive means
//     within the TTL of the incoming arrival stamp. Both the cap
//     check and the victim choice are computed over that stamp-defined
//     set — never over physical size(), which varies with sweep timing
//     — so each eviction decision depends only on the stamped request
//     prefix (identical live and replayed, whatever the grouping).
//     Already-processed lanes are pinned — required so an eviction
//     never invalidates their Session pointers mid-batch, and never
//     the oldest alive session anyway since get_or_create just moved
//     them to the front — while a session whose request sits later in
//     the same batch enjoys no protection, exactly as if requests were
//     served one at a time.
// Tiering (docs/store.md): attaching a store::SegmentStore via
// set_spill turns the LRU cap from a *forget* policy into a *tiering*
// policy. A cap victim's h/c state is appended to the spill tier on
// eviction and read back — bit-for-bit — when the session returns
// within its TTL, so capped serving produces exactly the digests of
// uncapped serving (the oracle equivalence the fuzz suite enforces):
//   * return within TTL: restore bits, generation and step count; the
//     eviction is invisible in every output.
//   * return past TTL: the record could only ever have been restored
//     into a TTL reset, so it is dropped unread and the session
//     restarts from zero with generation+1 — the same transition the
//     lazy TTL rule applies to a resident session.
//   * corrupt record (CRC mismatch): degrade to the pre-spill
//     behavior — a fresh generation-zero session — and count it in
//     restore_corrupt(); never an abort.
//   * spilling disabled (write-error policy) or no store attached:
//     eviction forgets, exactly the pre-spill semantics.
// Sessions freed by sweep_expired are NOT spilled: any future request
// arrives past their TTL (per-shard arrivals are monotone), so the
// record could never be restored.
//
// Durability (docs/store.md "Session journal"): attaching a
// store::Journal via set_journal makes every committed transition of
// this store — create, post-batch state update, TTL reset, evict,
// erase — a write-ahead record, and recover_from() reconstructs the
// exact RAM population (sessions, LRU order, digest table) a crashed
// instance last committed. The store also owns the *authoritative
// digest table*: commit_step() folds each served row into it on the
// shard thread, so every serving mode (replay, stdin live, the
// multiplexed front end, and a recovered restart) reads one table with
// one locking rule instead of each sink keeping its own copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "num/matrix.h"
#include "num/types.h"
#include "serve/digest.h"
#include "store/journal.h"
#include "store/segment_store.h"

namespace zss::serve {

/// Client identifier. Plain 64-bit so requests, trace lines and hash
/// sharding never touch the heap.
using SessionId = std::uint64_t;

/// Eviction policy of a SessionStore. Defaults keep every session
/// forever (the PR-3 behavior; what the closed-loop benches want).
struct SessionTtl {
  /// A session idle for strictly more than this many microseconds of
  /// *arrival time* restarts from zero state on its next request; its
  /// storage may be reclaimed by sweep_expired() meanwhile. Negative
  /// disables the TTL.
  std::int64_t ttl_us = -1;
  /// Hard cap on live sessions per store; creating one past the cap
  /// evicts the least-recently-arrived unpinned session. 0 = unbounded.
  /// A shard requires max_sessions > max_batch (serve/shard.cc) so a
  /// victim always exists outside the batch being served.
  num::Index max_sessions = 0;
};

struct Session {
  Session() = default;
  // The store's LRU list holds raw pointers into the map's nodes;
  // copying or moving a Session would leave those dangling.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id = 0;
  /// One (1 x dh) pair per model layer, stored pruned — exactly what
  /// DRAM would hold. Separate matrices (not one L x dh) so the
  /// batch-of-one path binds them straight into the stacked engine's
  /// per-layer step with zero copies (std::span over the vector).
  std::vector<num::Matrix> h;
  std::vector<num::Matrix> c;
  std::uint64_t steps = 0;
  /// Incremented each time the TTL rule restarted this session from
  /// zero state (the client kept its id but lost its conversation).
  std::uint64_t generation = 0;
  /// Arrival stamp of the last request that touched this session.
  std::int64_t last_arrival_us = 0;
  /// Pin count held by the shard while this session is a lane of a
  /// batch being served; pinned (> 0) sessions are never evicted or
  /// swept. A count, not a flag: with layer pipelining one session can
  /// be a lane of two in-flight batches at once (serve/shard.cc).
  num::Index pinned = 0;

 private:
  friend class SessionStore;
  Session* lru_prev_ = nullptr;  // toward most recently used
  Session* lru_next_ = nullptr;  // toward least recently used
};

/// Owns every session of one shard. Sessions are created on first use
/// with all-zero state (the recurrence's defined start); lookups on the
/// hot path never allocate. Single-threaded by design — a store belongs
/// to exactly one shard, and a shard to exactly one worker thread.
class SessionStore {
 public:
  /// `layers` is the model depth: each session carries one (1 x dh)
  /// h/c pair per layer, and the spill tier packs them side by side
  /// into one record of width layers * hidden_dim (state_width()).
  explicit SessionStore(num::Index hidden_dim, SessionTtl ttl = {},
                        num::Index layers = 1);

  /// Returns the session, creating it with zero state if unseen (or if
  /// the TTL expired since its previous request — same zero state, new
  /// generation). `arrival_us` is the requesting event's arrival stamp;
  /// callers must pass them non-decreasing (per-shard arrival order),
  /// which is what makes eviction replay-deterministic. Creation
  /// allocates; steady-state serving only looks up.
  Session& get_or_create(SessionId id, std::int64_t arrival_us = 0);

  /// Physically frees unpinned sessions whose TTL has expired relative
  /// to `newest_arrival_us` (the newest arrival stamp processed so
  /// far). Value-neutral by the monotone-arrivals argument above; call
  /// it at batch boundaries, never mid-batch. Returns sessions freed.
  num::Index sweep_expired(std::int64_t newest_arrival_us);

  Session* find(SessionId id);
  const Session* find(SessionId id) const;

  num::Index size() const { return static_cast<num::Index>(sessions_.size()); }
  num::Index hidden_dim() const { return dh_; }
  num::Index layers() const { return layers_; }
  /// Row width of one session's packed state (layers * hidden_dim) —
  /// the hidden_dim a spill SegmentStore must be built with.
  num::Index state_width() const { return layers_ * dh_; }
  const SessionTtl& ttl() const { return ttl_; }

  /// Attaches the durable spill tier (non-owning; the pool owns the
  /// store, one per shard). Null detaches — evictions forget again.
  void set_spill(store::SegmentStore* spill) {
    spill_ = spill;
    spill_active_.store(spill != nullptr && spill->spilling_enabled(),
                        std::memory_order_relaxed);
  }
  store::SegmentStore* spill() { return spill_; }

  /// Attaches the write-ahead journal (non-owning, one per shard).
  /// Null detaches — transitions stop being logged. Attach before the
  /// first request; recover_from() must run with the journal attached.
  void set_journal(store::Journal* journal) {
    journal_ = journal;
    journal_active_.store(journal != nullptr && journal->enabled(),
                          std::memory_order_relaxed);
  }
  store::Journal* journal() { return journal_; }

  /// Commits one served step of `s`: folds the row digest into the
  /// authoritative digest table and appends the session's post-step
  /// absolute state to the journal (a kUpdate record). The shard calls
  /// this once per lane, before the batch's group commit; the record
  /// is durable only after the journal's commit() at the batch
  /// boundary.
  void commit_step(Session& s, std::uint64_t row_digest);

  /// Group-commit barrier at the batch boundary: syncs every record
  /// appended since the previous commit. The shard must call this
  /// BEFORE delivering the batch's responses — that ordering is the
  /// entire durability guarantee (a client never observes a response
  /// whose state transition could be lost).
  void commit_batch();

  /// Writes a checkpoint and truncates the journal once it has grown
  /// past its size threshold. Call at batch boundaries only (it reads
  /// every session's state). Returns true if a checkpoint was written.
  bool maybe_checkpoint();

  /// Rebuilds this store from the journal's recovery output: the
  /// checkpoint population, then every post-watermark record in LSN
  /// order, then a reconcile pass erasing the spill tier's stale
  /// records for sessions the journal proved RAM-resident. Call once,
  /// on an empty store, with spill and journal already attached.
  void recover_from(store::Journal& journal);

  /// The session's committed position in the authoritative digest
  /// table (zero-value default when unseen). Thread-safe: the frontend
  /// answers "sync" queries from the event-loop thread while the shard
  /// worker folds.
  SessionDigest digest_of(SessionId id) const;

  /// Snapshot of the authoritative digest table (thread-safe).
  DigestTable digests_copy() const;

  /// Lifetime counters (monotone; not epoch-scoped). Relaxed atomics:
  /// each is written by the one shard thread that owns this store and
  /// may be read concurrently by the live server's stats path.
  std::uint64_t created() const {
    return created_.load(std::memory_order_relaxed);
  }
  std::uint64_t ttl_resets() const {
    return ttl_resets_.load(std::memory_order_relaxed);
  }
  std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  std::uint64_t spilled() const {
    return spilled_.load(std::memory_order_relaxed);
  }
  std::uint64_t restored() const {
    return restored_.load(std::memory_order_relaxed);
  }
  std::uint64_t restore_corrupt() const {
    return restore_corrupt_.load(std::memory_order_relaxed);
  }
  /// True while a spill tier is attached and accepting writes; flips
  /// false when the store's write-error policy degrades it. Mirrored
  /// into an atomic so the stats path never touches the store itself.
  bool spill_active() const {
    return spill_active_.load(std::memory_order_relaxed);
  }
  /// Same, for the write-ahead journal.
  bool journal_active() const {
    return journal_active_.load(std::memory_order_relaxed);
  }

 private:
  void lru_unlink(Session& s);
  void lru_push_front(Session& s);
  void evict(Session& s, bool spill_state);
  /// Packs the L per-layer rows side by side into the spill_h_/spill_c_
  /// staging rows (1 x state_width) — the layout both the spill tier
  /// and the journal persist.
  void pack_state(const Session& s);
  void unpack_state(Session& s, const float* h, const float* c);
  void journal_note(store::JournalRecordKind kind, const Session& s);
  void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  num::Index dh_;
  num::Index layers_;
  SessionTtl ttl_;
  std::unordered_map<SessionId, Session> sessions_;
  // Pack/unpack staging for the spill tier: one (1 x state_width())
  // row per matrix, reused across evictions and restores.
  num::Matrix spill_h_;
  num::Matrix spill_c_;
  Session* lru_head_ = nullptr;  // most recently used
  Session* lru_tail_ = nullptr;  // least recently used
  store::SegmentStore* spill_ = nullptr;
  store::Journal* journal_ = nullptr;
  // The authoritative digest table. Written only by the owning shard
  // thread (commit_step, recover_from); the mutex exists for the
  // cross-thread readers — "sync" queries and shutdown snapshots.
  mutable std::mutex digest_mu_;
  DigestTable digests_;
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> ttl_resets_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> spilled_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::uint64_t> restore_corrupt_{0};
  std::atomic<bool> spill_active_{false};
  std::atomic<bool> journal_active_{false};
};

}  // namespace zss::serve
