// Serving sessions — per-client recurrent state owned outside the engine.
//
// A Session is one client's conversation with the model: its h/c state
// (1 x dh each), a step counter, and the id requests address it by. The
// SparseLstmEngine never owns state (its h/c parameters are bound per
// call by reference — core/sparse_inference.h), so the serving layer
// keeps exactly one Session per client and swaps its matrices into a
// step with no element copies on the batch-of-one path; batched steps
// gather/scatter the rows explicitly (serve/shard.cc), which is one of
// the two costs the batching policy trades against (docs/serving.md).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::serve {

/// Client identifier. Plain 64-bit so requests, trace lines and hash
/// sharding never touch the heap.
using SessionId = std::uint64_t;

struct Session {
  SessionId id = 0;
  num::Matrix h;  // (1 x dh), stored pruned — exactly what DRAM holds
  num::Matrix c;  // (1 x dh)
  std::uint64_t steps = 0;
};

/// Owns every session of one shard. Sessions are created on first use
/// with all-zero state (the recurrence's defined start); lookups on the
/// hot path never allocate.
class SessionStore {
 public:
  explicit SessionStore(num::Index hidden_dim);

  /// Returns the session, creating it with zero state if unseen.
  /// Creation allocates; steady-state serving only looks up.
  Session& get_or_create(SessionId id);

  Session* find(SessionId id);
  const Session* find(SessionId id) const;

  num::Index size() const { return static_cast<num::Index>(sessions_.size()); }
  num::Index hidden_dim() const { return dh_; }

 private:
  num::Index dh_;
  std::unordered_map<SessionId, Session> sessions_;
};

}  // namespace zss::serve
