#include "serve/batcher.h"

namespace zss::serve {

RequestBatcher::RequestBatcher(const BatchPolicy& policy) : policy_(policy) {
  ZSS_EXPECTS(policy.max_batch >= 1);
  ZSS_EXPECTS(policy.max_wait_us >= 0);
  ring_.resize(64);
}

const Request& RequestBatcher::at(std::size_t i) const {
  return ring_[(head_ + i) % ring_.size()];
}

void RequestBatcher::reserve(num::Index n) {
  if (n <= static_cast<num::Index>(ring_.size())) return;
  std::vector<Request> grown(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < count_; ++i) grown[i] = at(i);
  ring_ = std::move(grown);
  head_ = 0;
}

void RequestBatcher::enqueue(const Request& r) {
  if (count_ == ring_.size()) {
    reserve(static_cast<num::Index>(ring_.size() * 2));
  }
  ring_[(head_ + count_) % ring_.size()] = r;
  ++count_;
}

std::int64_t RequestBatcher::oldest_arrival_us() const {
  ZSS_EXPECTS(count_ > 0);
  return at(0).arrival_us;
}

num::Index RequestBatcher::conflict_free_prefix(num::Index cap) const {
  // The prefix must stay FIFO: stopping at the first duplicate session
  // (instead of skipping past it) is what preserves per-session order.
  const auto limit = std::min<std::size_t>(count_, static_cast<std::size_t>(cap));
  std::size_t n = 0;
  for (; n < limit; ++n) {
    bool duplicate = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (at(j).session == at(n).session) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) break;
  }
  return static_cast<num::Index>(n);
}

bool RequestBatcher::ready(std::int64_t now_us) const {
  if (count_ == 0) return false;
  const num::Index cap = policy_.max_batch;
  const num::Index prefix = conflict_free_prefix(cap);
  if (prefix >= cap) return true;
  // A same-session conflict blocks growth; waiting cannot help.
  if (prefix < static_cast<num::Index>(count_)) return true;
  return now_us - oldest_arrival_us() >= policy_.max_wait_us;
}

num::Index RequestBatcher::pop_batch(std::vector<Request>& out) {
  out.clear();
  const num::Index n = conflict_free_prefix(policy_.max_batch);
  for (num::Index i = 0; i < n; ++i) out.push_back(at(static_cast<std::size_t>(i)));
  head_ = (head_ + static_cast<std::size_t>(n)) % ring_.size();
  count_ -= static_cast<std::size_t>(n);
  return n;
}

}  // namespace zss::serve
