// One serving shard: a SparseLstmEngine, its sessions, and a batcher.
//
// A shard is the unit of parallelism in the pool: it owns everything it
// touches (engine + workspace, session store, request queue, staging
// buffers), so shards never share mutable state and the pool can run
// them on one thread each with deterministic results — the same
// shared-nothing partitioning discipline as num::parallel_for, applied
// at the request level instead of the row level. The LstmCell and
// StatePruner are borrowed read-only and may back every shard.
//
// Determinism guarantee (test-enforced, tests/serve/shard_determinism
// _test.cc): a session's output stream depends only on its own request
// stream, never on which batch-mates or shard served it. This follows
// from the bit-exactness contract (docs/exactness.md) — with the
// per-lane skip path a lane accumulates exactly its own kept positions
// whatever the batch around it — plus one restriction this constructor
// enforces: the pruner
// must be batch-composition-independent (kTargetSparsity derives its
// threshold from a whole-batch quantile, so it is rejected; export a
// trained model's threshold via StatePruner::effective_threshold and
// serve with PrunerConfig::fixed instead).
//
// Zero-allocation contract: once every session in play exists and the
// warm-up batches ran, process_ready()/flush() perform no heap
// allocations (engine reserve() at construction, staging matrices
// resized within capacity, ring-buffered queue).
#pragma once

#include <chrono>
#include <vector>

#include "core/sparse_inference.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "serve/session.h"

namespace zss::serve {

/// Counters for one measurement epoch of a shard (reset_stats() starts
/// a new epoch; the engine's cumulative stats reset with it).
struct ShardStats {
  num::Index requests = 0;
  num::Index batches = 0;
  double busy_us = 0.0;  // wall-clock spent inside step_batch
  /// CPU time this shard's thread spent inside step_batch. Unlike
  /// busy_us this does not count time spent descheduled, so it is the
  /// right numerator for capacity/scaling claims on machines with
  /// fewer cores than shards (bench_serving records both).
  double cpu_us = 0.0;

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

class EngineShard {
 public:
  /// Borrows cell and pruner (caller keeps them alive; both are shared
  /// read-only across shards). Rejects batch-composition-dependent
  /// pruning — see the determinism note above. A bounded session store
  /// (ttl.max_sessions > 0) must leave room for a whole batch of
  /// pinned lanes plus an eviction victim: max_sessions > max_batch.
  /// `quant` selects the engine's datapath: default fp32, or the int8
  /// quantized mode (core::QuantConfig::int8()). Quantized shards keep
  /// the full determinism guarantee — every quantization scale is
  /// fixed at construction, so no batch-composition dependence can
  /// enter through the datapath (docs/exactness.md "int8").
  EngineShard(const nn::LstmCell& cell, const core::StatePruner& pruner,
              const BatchPolicy& policy,
              sparse::EncoderConfig encoder = {}, SessionTtl ttl = {},
              core::QuantConfig quant = {});

  void enqueue(const Request& r) { batcher_.enqueue(r); }

  /// Serves at most one batch, and only if the policy says one is due
  /// at `now_us`. Returns the number of requests served (0 = not due).
  num::Index process_ready(std::int64_t now_us, const ResponseSink& sink);

  /// Serves everything queued, ignoring max-wait (trace end, shutdown,
  /// closed-loop benches). Batches still respect max_batch and session
  /// conflicts. Returns requests served.
  num::Index flush(std::int64_t now_us, const ResponseSink& sink);

  num::Index pending() const { return batcher_.pending(); }
  const RequestBatcher& batcher() const { return batcher_; }
  const core::SparseLstmEngine& engine() const { return engine_; }
  SessionStore& sessions() { return sessions_; }
  const SessionStore& sessions() const { return sessions_; }

  const ShardStats& stats() const { return stats_; }

  /// Starts a new measurement epoch: clears the shard counters AND the
  /// engine's cumulative InferenceStats (the documented reset between
  /// batcher epochs — benches call this per configuration).
  void reset_stats();

 private:
  num::Index step_batch(std::int64_t now_us, const ResponseSink& sink);

  const nn::LstmCell* cell_;
  core::SparseLstmEngine engine_;
  SessionStore sessions_;
  RequestBatcher batcher_;
  ShardStats stats_;
  std::vector<Request> batch_;    // reused pop_batch target
  std::vector<Session*> lanes_;   // sessions of the batch being served
  num::Matrix x_;               // (B x dx) one-hot staging
  num::Matrix h_;               // (B x dh) gathered state
  num::Matrix c_;               // (B x dh)
};

}  // namespace zss::serve
