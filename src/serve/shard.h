// One serving shard: a stacked engine, its sessions, and a batcher.
//
// A shard is the unit of parallelism in the pool: it owns everything it
// touches (per-layer engines + workspaces, session store, request
// queue, staging buffers), so shards never share mutable state and the
// pool can run them on one thread each with deterministic results — the
// same shared-nothing partitioning discipline as num::parallel_for,
// applied at the request level instead of the row level. The LstmCells,
// StatePruners and Embedding are borrowed read-only and may back every
// shard.
//
// Determinism guarantee (test-enforced, tests/serve/shard_determinism
// _test.cc): a session's output stream depends only on its own request
// stream, never on which batch-mates or shard served it. This follows
// from the bit-exactness contract (docs/exactness.md) — with the
// per-lane skip path a lane accumulates exactly its own kept positions
// whatever the batch around it — plus one restriction this constructor
// enforces: the pruner
// must be batch-composition-independent (kTargetSparsity derives its
// threshold from a whole-batch quantile, so it is rejected; export a
// trained model's threshold via StatePruner::effective_threshold and
// serve with PrunerConfig::fixed instead).
//
// Layer pipelining (opt-in, multi-layer models): flush() can run a
// wavefront — up to L batches in flight, the k-th most recent at layer
// L-1-k — so layer l of step t overlaps layer l-1 of step t+1 across
// num::parallel_for workers. Concurrent flights always occupy DIFFERENT
// layers, and distinct layers are distinct SparseLstmEngine instances
// with disjoint scratch and stats, so the tick needs no locking. Bit-
// identity with the sequential schedule is structural: per layer, batch
// t's step always runs a full tick before batch t+1's (the recurrence
// order), pop_batch order is unchanged (it never reads session state),
// responses retire in admission order, and the two cross-batch hazards
// are fenced — a session appearing in two in-flight batches holds two
// pins (Session::pinned is a count), and a batch whose admission would
// lazily TTL-reset a pinned session waits until the in-flight batches
// drain. Eviction can never hit an in-flight lane: a capped store must
// satisfy max_sessions > layers * max_batch when pipelining.
//
// Zero-allocation contract: once every session in play exists and the
// warm-up batches ran, process_ready()/flush() perform no heap
// allocations (engine reserve() at construction, staging matrices
// resized within capacity, ring-buffered queue, pre-sized flights).
// The pipelined wavefront keeps that contract per tick except inside
// num::parallel_for itself, which spawns its worker threads per call.
#pragma once

#include <atomic>
#include <chrono>
#include <vector>

#include "core/sparse_inference.h"
#include "core/stacked_engine.h"
#include "serve/batcher.h"
#include "serve/model.h"
#include "serve/request.h"
#include "serve/session.h"

namespace zss::serve {

/// Counters for one measurement epoch of a shard (reset_stats() starts
/// a new epoch; the engine's cumulative stats reset with it).
struct ShardStats {
  num::Index requests = 0;
  num::Index batches = 0;
  double busy_us = 0.0;  // wall-clock spent inside step/tick work
  /// CPU time this shard's thread spent inside step_batch. Unlike
  /// busy_us this does not count time spent descheduled, so it is the
  /// right numerator for capacity/scaling claims on machines with
  /// fewer cores than shards (bench_serving records both).
  double cpu_us = 0.0;

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

class EngineShard {
 public:
  /// Serves `model` (cells/pruners/embedding borrowed; the pointer
  /// lists are copied, the pointees must outlive the shard). Rejects
  /// batch-composition-dependent pruning — see the determinism note
  /// above. A bounded session store (ttl.max_sessions > 0) must leave
  /// room for every pinned lane plus an eviction victim:
  /// max_sessions > max_batch, and > layers * max_batch with
  /// `pipeline` (up to layers batches hold pins at once).
  /// `quant` selects the engines' datapath: default fp32, or the int8
  /// quantized mode (core::QuantConfig::int8()). Quantized shards keep
  /// the full determinism guarantee — every quantization scale is
  /// fixed at construction, so no batch-composition dependence can
  /// enter through the datapath (docs/exactness.md "int8").
  EngineShard(const ServeModel& model, const BatchPolicy& policy,
              sparse::EncoderConfig encoder = {}, SessionTtl ttl = {},
              core::QuantConfig quant = {}, bool pipeline = false);

  /// Single-layer convenience (the synthetic-load benches and most
  /// tests): serve one borrowed cell/pruner with one-hot inputs.
  EngineShard(const nn::LstmCell& cell, const core::StatePruner& pruner,
              const BatchPolicy& policy,
              sparse::EncoderConfig encoder = {}, SessionTtl ttl = {},
              core::QuantConfig quant = {});

  void enqueue(const Request& r) { batcher_.enqueue(r); }

  /// Serves at most one batch, and only if the policy says one is due
  /// at `now_us`. Returns the number of requests consumed from the
  /// queue (0 = not due): served ones plus any answered `err timeout`
  /// — every consumed request produces exactly one sink call either
  /// way. Always the sequential schedule — the wavefront lives in
  /// flush().
  num::Index process_ready(std::int64_t now_us, const ResponseSink& sink);

  /// Serves everything queued, ignoring max-wait (trace end, shutdown,
  /// closed-loop benches). Batches still respect max_batch and session
  /// conflicts. With pipelining enabled and a multi-layer model, runs
  /// the layer wavefront described above. Returns requests consumed
  /// (served + timed out), as process_ready.
  num::Index flush(std::int64_t now_us, const ResponseSink& sink);

  num::Index pending() const { return batcher_.pending(); }
  const RequestBatcher& batcher() const { return batcher_; }
  const core::StackedEngine& engine() const { return engine_; }
  SessionStore& sessions() { return sessions_; }
  const SessionStore& sessions() const { return sessions_; }
  bool pipeline() const { return pipeline_; }

  const ShardStats& stats() const { return stats_; }

  /// Lifetime count of requests answered `err timeout` (deadline
  /// expiry). Relaxed atomic: written by the shard's worker thread,
  /// read by the live server's stats path.
  std::uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

  /// Starts a new measurement epoch: clears the shard counters AND the
  /// engines' cumulative InferenceStats (the documented reset between
  /// batcher epochs — benches call this per configuration).
  void reset_stats();

 private:
  /// One batch moving through the layer wavefront. Pre-sized at
  /// construction; flights are reused round-robin, never reallocated.
  struct Flight {
    std::vector<Request> requests;
    std::vector<Session*> lanes;
    num::Index batch = 0;
    num::Index layer = 0;  // next layer this flight will run
    bool admitted = false;  // lanes pinned, x built
    std::chrono::steady_clock::time_point t0;
    num::Matrix x;      // model input (B x input_dim), layer 0 only
    num::Matrix ff[2];  // dense-h ping-pong between layers (B x dh)
    num::Matrix hl;     // gathered layer state, batch > 1 (B x dh)
    num::Matrix cl;
  };

  void init(const BatchPolicy& policy);
  /// Answers every popped request whose deadline passed with a
  /// timed_out Response and compacts the rest in place (FIFO order
  /// preserved). Returns the new batch size.
  num::Index drop_expired(std::vector<Request>& requests, num::Index batch,
                          std::int64_t now_us, const ResponseSink& sink);
  num::Index step_batch(std::int64_t now_us, const ResponseSink& sink);
  num::Index flush_wavefront(std::int64_t now_us, const ResponseSink& sink);
  void build_input(const std::vector<Request>& requests, num::Index batch,
                   num::Matrix& x);
  /// Pins lanes + builds x. Requires the TTL hazard check to have
  /// passed (no pinned session may lazily reset during admission).
  void admit(Flight& f);
  void run_layer(Flight& f);
  num::Index retire(Flight& f, std::int64_t now_us, double service_us,
                    const ResponseSink& sink);

  std::vector<const nn::LstmCell*> cells_;
  std::vector<const core::StatePruner*> pruners_;
  const nn::Embedding* embedding_;
  core::StackedEngine engine_;
  SessionStore sessions_;
  RequestBatcher batcher_;
  bool pipeline_ = false;
  ShardStats stats_;
  std::atomic<std::uint64_t> timeouts_{0};
  std::vector<Request> batch_;    // reused pop_batch target
  std::vector<Session*> lanes_;   // sessions of the batch being served
  std::vector<std::uint64_t> row_digests_;  // per-lane, reused
  std::vector<num::Index> ids_;   // embedding row indices, reused
  num::Matrix x_;                 // (B x input_dim) staging
  std::vector<num::Matrix> h_;    // per-layer gathered state (B x dh)
  std::vector<num::Matrix> c_;
  num::Matrix dense_top_;         // top layer's dense h (B x dh)
  std::vector<Flight> flights_;   // wavefront slots, layers() entries
};

}  // namespace zss::serve
