// Per-session output digests — the serving layer's observable stream.
//
// Split out of serve/protocol.h so the session store can own the
// authoritative digest table (serve/session.h) without pulling the
// protocol formatting layer into every store include. Everything here
// is the exact digest arithmetic PR 3 introduced: a rolling FNV-1a per
// session over each response's 8-byte row digest, in per-session serve
// order. Every mode (replay, stdin live, the multiplexed front end)
// reads the same table, which is what makes `diff` across modes — and
// now across a crash/recovery boundary — the determinism gate.
#pragma once

#include <cstdint>
#include <map>
#include <span>

namespace zss::serve {

/// Client identifier (mirrors serve/session.h's definition; both are
/// the raw 64-bit id so this header stays dependency-free).
using DigestSessionId = std::uint64_t;

/// FNV-1a offset basis; fold bytes with fnv1a() starting from this.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Rolling FNV-1a over raw bytes (the digest primitive shared by the
/// replay driver, the live protocol and the tests).
inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One-shot digest of a hidden row.
inline std::uint64_t digest_row(std::span<const float> row) {
  return fnv1a(kFnvOffset, row.data(), row.size_bytes());
}

/// Rolling per-session digest: FNV-1a over each response's 8-byte row
/// digest, in per-session serve order.
struct SessionDigest {
  std::uint64_t steps = 0;
  std::uint64_t digest = kFnvOffset;

  friend bool operator==(const SessionDigest& a, const SessionDigest& b) {
    return a.steps == b.steps && a.digest == b.digest;
  }
};

/// std::map so iteration (and therefore printing) is sorted by id.
using DigestTable = std::map<DigestSessionId, SessionDigest>;

/// Folds one 8-byte row digest into its session's rolling digest.
inline void fold_row_digest(SessionDigest& d, std::uint64_t row) {
  d.digest = fnv1a(d.digest, &row, sizeof row);
  ++d.steps;
}

}  // namespace zss::serve
