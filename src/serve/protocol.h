// Line-oriented streaming protocol of the live serving front end.
//
// One request or response per '\n'-terminated line, ASCII, space
// separated — greppable, scriptable, and exactly expressive enough to
// drive the engine (tools/zss_serve --live speaks it on stdin/stdout
// or a UNIX socket). Grammar (docs/serving.md "Live mode"):
//
//   client line  = "step" SP session SP token     ; one token, one session
//                | "flush"                        ; serve all queued now
//                | "stats"                        ; server counters
//                | "quit"                         ; graceful shutdown
//                | "#" ...                        ; comment, ignored
//                | <blank>                        ; ignored
//
//   server line  = "hi" SP conn                  ; socket greeting only
//                | "ok" SP session SP seq SP batch SP digest
//                | "err" SP message
//                | "stat" SP key "=" value ...   ; format_stats() below
//                | "bye" SP "submitted=" n SP "responses=" n
//
// `digest` is the 16-hex-digit FNV-1a of the session's new hidden row
// — the serving layer's observable output, compact enough to stream.
// Responses are asynchronous: "ok" lines appear when batches close,
// not in lockstep with input lines (per-session order is guaranteed,
// global interleaving is not). Parsing is strict the same way the
// trace parser is: a malformed line (unknown verb, missing or trailing
// fields, unparsable numbers) is reported, never guessed at.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "serve/request.h"

namespace zss::serve {

/// FNV-1a offset basis; fold bytes with fnv1a() starting from this.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Rolling FNV-1a over raw bytes (the digest primitive shared by the
/// replay driver, the live protocol and the tests).
inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One-shot digest of a hidden row.
inline std::uint64_t digest_row(std::span<const float> row) {
  return fnv1a(kFnvOffset, row.data(), row.size_bytes());
}

/// Strict session-id field parse: decimal digits only, no sign, fits
/// in 64 bits. Stream extraction into the unsigned SessionId would
/// accept "-7" by wrapping modulo 2^64 (strtoull semantics, failbit
/// clear) — a corrupted line served as a phantom session instead of
/// rejected. Shared by the protocol and trace parsers.
inline bool parse_session_id(std::string_view field, SessionId& out) {
  if (field.empty()) return false;
  std::uint64_t v = 0;
  for (const char ch : field) {
    if (ch < '0' || ch > '9') return false;
    const auto d = static_cast<std::uint64_t>(ch - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// Rolling per-session digest: FNV-1a over each response's 8-byte row
/// digest, in per-session serve order. This is the serving layer's
/// observable output stream — every mode (replay, stdin live, the
/// multiplexed front end) folds the same table, which is what makes
/// `diff` across modes the determinism gate.
struct SessionDigest {
  std::uint64_t steps = 0;
  std::uint64_t digest = kFnvOffset;

  friend bool operator==(const SessionDigest& a, const SessionDigest& b) {
    return a.steps == b.steps && a.digest == b.digest;
  }
};

/// std::map so iteration (and therefore printing) is sorted by id.
using DigestTable = std::map<SessionId, SessionDigest>;

/// Folds one response into its session's rolling digest and returns
/// the row digest — computed exactly once, so a live sink can share it
/// with the protocol "ok" line instead of hashing the row twice.
inline std::uint64_t fold_response(DigestTable& table, const Response& r) {
  const std::uint64_t row = digest_row(r.h);
  SessionDigest& d = table[r.session];
  d.digest = fnv1a(d.digest, &row, sizeof row);
  ++d.steps;
  return row;
}

struct CommandLine {
  enum class Op { kStep, kFlush, kStats, kQuit };
  Op op = Op::kStep;
  SessionId session = 0;  // kStep only
  num::Index token = 0;   // kStep only
};

enum class ParseStatus {
  kCommand,  // `out` holds a parsed command
  kBlank,    // blank or comment line — nothing to do
  kError,    // malformed — `error` says why; the line must be rejected
};

/// Parses one client line. Strict: extra fields, missing fields,
/// negative tokens and unknown verbs are kError, never guessed at.
ParseStatus parse_command(std::string_view line, CommandLine& out,
                          std::string* error);

/// "ok <session> <seq> <batch> <digest>" for a served response.
std::string format_response(const Response& r);

/// Same, with the row digest precomputed by the caller (the serving
/// hot path hashes the row once and shares it with its digest table).
std::string format_response(const Response& r, std::uint64_t digest);

/// "err <message>".
std::string format_error(std::string_view message);

/// "hi <conn>" — the multiplexed front end's per-connection greeting
/// (first line a socket client reads; stdin mode sends none). The
/// connection id is diagnostic only: responses are already routed to
/// the issuing connection, so clients never need to echo it back.
std::string format_greeting(std::uint64_t conn);

/// "bye submitted=<n> responses=<n>" — last line before the server
/// closes a stream (graceful shutdown).
std::string format_bye(std::uint64_t submitted, std::uint64_t responses);

/// Everything one "stat" line reports: the live server's request
/// counters plus the session-store counters summed over all shards
/// (each is a relaxed-atomic lifetime counter — serve/session.h — so
/// the ingest thread can snapshot them while shard workers run).
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t responses = 0;
  std::uint64_t shed = 0;
  std::int64_t now_us = 0;
  std::uint64_t created = 0;
  std::uint64_t ttl_resets = 0;
  std::uint64_t evicted = 0;
  std::uint64_t spilled = 0;
  std::uint64_t restored = 0;
  std::uint64_t restore_corrupt = 0;
  /// Shards whose spill tier is attached and accepting writes. With a
  /// --spill-dir configured, spill_active < shards means the
  /// write-error policy degraded some shard to RAM-only serving.
  num::Index spill_active = 0;
  num::Index shards = 0;
  /// Identity of the served model (EnginePool::model_info(); fixed at
  /// pool construction). "random" = no checkpoint loaded.
  std::string model = "random";
  num::Index layers = 1;
  num::Index dh = 0;
  num::Index vocab = 0;
  bool quant = false;
};

/// "stat submitted=... responses=... shed=... now_us=... created=...
/// ttl_resets=... evicted=... spilled=... restored=...
/// restore_corrupt=... spill_active=N/M model=... layers=L dh=N
/// vocab=V quant=off|int8" — one line, fixed key order, so scripts can
/// grep a key without tracking field positions.
std::string format_stats(const StatsSnapshot& s);

}  // namespace zss::serve
