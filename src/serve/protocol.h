// Line-oriented streaming protocol of the live serving front end.
//
// One request or response per '\n'-terminated line, ASCII, space
// separated — greppable, scriptable, and exactly expressive enough to
// drive the engine (tools/zss_serve --live speaks it on stdin/stdout
// or a UNIX socket). Grammar (docs/serving.md "Live mode"):
//
//   client line  = "step" SP session SP token     ; one token, one session
//                | "flush"                        ; serve all queued now
//                | "stats"                        ; server counters
//                | "sync" SP session              ; committed position query
//                | "quit"                         ; graceful shutdown
//                | "#" ...                        ; comment, ignored
//                | <blank>                        ; ignored
//
//   server line  = "hi" SP conn                  ; socket greeting only
//                | "ok" SP session SP seq SP batch SP digest
//                | "err" SP message
//                | "stat" SP key "=" value ...   ; format_stats() below
//                | "pos" SP session SP steps SP digest   ; reply to sync
//                | "bye" SP "submitted=" n SP "responses=" n
//
// `digest` is the 16-hex-digit FNV-1a of the session's new hidden row
// — the serving layer's observable output, compact enough to stream.
// Responses are asynchronous: "ok" lines appear when batches close,
// not in lockstep with input lines (per-session order is guaranteed,
// global interleaving is not). Parsing is strict the same way the
// trace parser is: a malformed line (unknown verb, missing or trailing
// fields, unparsable numbers) is reported, never guessed at.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "serve/digest.h"
#include "serve/request.h"

namespace zss::serve {

/// Strict session-id field parse: decimal digits only, no sign, fits
/// in 64 bits. Stream extraction into the unsigned SessionId would
/// accept "-7" by wrapping modulo 2^64 (strtoull semantics, failbit
/// clear) — a corrupted line served as a phantom session instead of
/// rejected. Shared by the protocol and trace parsers.
inline bool parse_session_id(std::string_view field, SessionId& out) {
  if (field.empty()) return false;
  std::uint64_t v = 0;
  for (const char ch : field) {
    if (ch < '0' || ch > '9') return false;
    const auto d = static_cast<std::uint64_t>(ch - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// Folds one response into its session's rolling digest and returns
/// the row digest — computed exactly once, so a live sink can share it
/// with the protocol "ok" line instead of hashing the row twice.
/// (SessionDigest/DigestTable themselves live in serve/digest.h; the
/// session store owns the authoritative table since the journal PR.)
inline std::uint64_t fold_response(DigestTable& table, const Response& r) {
  const std::uint64_t row = digest_row(r.h);
  fold_row_digest(table[r.session], row);
  return row;
}

struct CommandLine {
  enum class Op { kStep, kFlush, kStats, kSync, kQuit };
  Op op = Op::kStep;
  SessionId session = 0;  // kStep and kSync
  num::Index token = 0;   // kStep only
};

enum class ParseStatus {
  kCommand,  // `out` holds a parsed command
  kBlank,    // blank or comment line — nothing to do
  kError,    // malformed — `error` says why; the line must be rejected
};

/// Parses one client line. Strict: extra fields, missing fields,
/// negative tokens and unknown verbs are kError, never guessed at.
ParseStatus parse_command(std::string_view line, CommandLine& out,
                          std::string* error);

/// "ok <session> <seq> <batch> <digest>" for a served response.
std::string format_response(const Response& r);

/// Same, with the row digest precomputed by the caller (the serving
/// hot path hashes the row once and shares it with its digest table).
std::string format_response(const Response& r, std::uint64_t digest);

/// "err <message>".
std::string format_error(std::string_view message);

/// "hi <conn>" — the multiplexed front end's per-connection greeting
/// (first line a socket client reads; stdin mode sends none). The
/// connection id is diagnostic only: responses are already routed to
/// the issuing connection, so clients never need to echo it back.
std::string format_greeting(std::uint64_t conn);

/// "bye submitted=<n> responses=<n>" — last line before the server
/// closes a stream (graceful shutdown).
std::string format_bye(std::uint64_t submitted, std::uint64_t responses);

/// "pos <session> <steps> <digest>" — reply to "sync <session>": the
/// session's committed position in the server's authoritative digest
/// table (steps=0 digest=fnv-offset when the session is unknown). A
/// reconnecting client compares this against its own ledger and
/// re-drives only the suffix the server never committed — the
/// idempotent-resume half of crash recovery.
std::string format_pos(SessionId session, const SessionDigest& d);

/// Everything one "stat" line reports: the live server's request
/// counters plus the session-store counters summed over all shards
/// (each is a relaxed-atomic lifetime counter — serve/session.h — so
/// the ingest thread can snapshot them while shard workers run).
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t responses = 0;
  std::uint64_t shed = 0;
  std::int64_t now_us = 0;
  std::uint64_t created = 0;
  std::uint64_t ttl_resets = 0;
  std::uint64_t evicted = 0;
  std::uint64_t spilled = 0;
  std::uint64_t restored = 0;
  std::uint64_t restore_corrupt = 0;
  /// Shards whose spill tier is attached and accepting writes. With a
  /// --spill-dir configured, spill_active < shards means the
  /// write-error policy degraded some shard to RAM-only serving.
  num::Index spill_active = 0;
  num::Index shards = 0;
  /// Requests that waited past their --deadline-us and were answered
  /// with "err timeout" instead of being served.
  std::uint64_t timeouts = 0;
  /// Supervisor activity: lifetime worker restarts, and how many
  /// shards are quarantined (answering "err unavailable") right now.
  std::uint64_t restarts = 0;
  num::Index quarantined = 0;
  /// Shards whose write-ahead journal is attached and accepting
  /// appends. Under --durability=journal, journal_active < shards
  /// means the write-error policy degraded some shard to undurable
  /// serving (the degradation ladder in docs/serving.md).
  num::Index journal_active = 0;
  /// The configured --durability mode: "off", "spill" or "journal".
  std::string durability = "off";
  /// Identity of the served model (EnginePool::model_info(); fixed at
  /// pool construction). "random" = no checkpoint loaded.
  std::string model = "random";
  num::Index layers = 1;
  num::Index dh = 0;
  num::Index vocab = 0;
  bool quant = false;
};

/// "stat submitted=... responses=... shed=... now_us=... created=...
/// ttl_resets=... evicted=... spilled=... restored=...
/// restore_corrupt=... spill_active=N/M timeouts=... restarts=...
/// quarantined=... journal_active=N/M durability=... model=...
/// layers=L dh=N vocab=V quant=off|int8" — one line, fixed key order,
/// so scripts can grep a key without tracking field positions.
std::string format_stats(const StatsSnapshot& s);

}  // namespace zss::serve
