// Shard watchdog — detects crashed/wedged workers and restarts them.
//
// Each ShardWorker stamps a monotonic heartbeat at every loop
// iteration (serve/worker.h). The supervisor polls those stamps from
// its own thread: a worker that HOLDS WORK (inflight > 0) whose
// heartbeat has not advanced for `stall_ms` is judged dead — stuck in
// the engine, deadlocked, or spinning — and repaired through
// LiveServer::restart_shard(): quarantine, abandon, rebuild the shard
// from its journal, mount a fresh worker. Surviving shards serve
// throughout; the restarted shard resumes from its last group-commit.
//
// Threshold discipline: a worker sleeping toward its batcher's
// max-wait deadline legitimately freezes its heartbeat with work
// queued, so `stall_ms` must comfortably exceed max_wait_us / 1000
// (and the worst-case batch service time). The constructor enforces
// nothing — the caller knows its policy — but zss_serve refuses a
// stall bound below its batcher max-wait. An idle worker (inflight ==
// 0) never trips the watchdog no matter how long it sleeps.
//
// Misjudgment safety: restart correctness does NOT depend on the
// stall verdict being right. Abandonment is checked by the worker
// before every shard touch, so a slow-but-alive worker the watchdog
// shot exits without serving — no duplicate responses — and its
// unserved requests are accounted `abandoned` like any other restart.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/worker.h"

namespace zss::serve {

struct SupervisorConfig {
  /// A worker with queued work whose heartbeat is older than this is
  /// restarted. <= 0 disables the watchdog entirely (start() no-ops).
  std::int64_t stall_ms = 0;
  /// Poll cadence. Detection latency is stall_ms + up to one poll.
  std::int64_t poll_ms = 20;
};

class Supervisor {
 public:
  /// Borrows the server for the supervisor's lifetime. Call start() to
  /// arm; stop() (or destruction) disarms. Stop the supervisor BEFORE
  /// shutting the server down — restart_shard no-ops after shutdown,
  /// but a watchdog poking a dying server is noise.
  Supervisor(LiveServer& server, SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void start();
  void stop();

  /// Lifetime count of restarts this supervisor triggered (the
  /// server's own restarts() also counts manual calls).
  std::uint64_t restarts_triggered() const {
    return restarts_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  LiveServer* server_;
  SupervisorConfig cfg_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> restarts_{0};
  std::thread thread_;
};

}  // namespace zss::serve
