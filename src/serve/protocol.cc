#include "serve/protocol.h"

#include <cinttypes>
#include <cstdio>

namespace zss::serve {

namespace {

ParseStatus fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return ParseStatus::kError;
}

constexpr std::string_view kWs = " \t\r\n";

/// Pops the next whitespace-separated field off `rest` (empty if none).
/// No allocation — the ingest loop parses every live request with this.
std::string_view next_field(std::string_view& rest) {
  const auto begin = rest.find_first_not_of(kWs);
  if (begin == std::string_view::npos) {
    rest = {};
    return {};
  }
  const auto end = rest.find_first_of(kWs, begin);
  const std::string_view field = rest.substr(begin, end - begin);
  rest = end == std::string_view::npos ? std::string_view{} : rest.substr(end);
  return field;
}

/// Strict non-negative token parse: digits only, fits in num::Index.
bool parse_token(std::string_view field, num::Index& out) {
  SessionId v = 0;
  if (!parse_session_id(field, v) ||
      v > static_cast<SessionId>(std::numeric_limits<num::Index>::max())) {
    return false;
  }
  out = static_cast<num::Index>(v);
  return true;
}

}  // namespace

ParseStatus parse_command(std::string_view line, CommandLine& out,
                          std::string* error) {
  std::string_view rest = line;
  const std::string_view verb = next_field(rest);
  if (verb.empty() || verb.front() == '#') return ParseStatus::kBlank;
  if (verb == "step") {
    // Same strictness as the trace parser: a trailing field usually
    // means a lost newline merged two commands, and serving half of a
    // corrupted line would surface later as a digest mismatch. The
    // numeric fields go through the digits-only parses — stream
    // extraction would wrap a negative session id modulo 2^64.
    const std::string_view session_field = next_field(rest);
    const std::string_view token_field = next_field(rest);
    if (!parse_session_id(session_field, out.session) ||
        !parse_token(token_field, out.token) || !next_field(rest).empty()) {
      return fail(error, "malformed step command (want: step SESSION TOKEN): " +
                             std::string(line));
    }
    out.op = CommandLine::Op::kStep;
    return ParseStatus::kCommand;
  }
  if (verb == "sync") {
    const std::string_view session_field = next_field(rest);
    if (!parse_session_id(session_field, out.session) ||
        !next_field(rest).empty()) {
      return fail(error, "malformed sync command (want: sync SESSION): " +
                             std::string(line));
    }
    out.op = CommandLine::Op::kSync;
    return ParseStatus::kCommand;
  }
  if (verb == "flush" || verb == "stats" || verb == "quit") {
    if (!next_field(rest).empty()) {
      return fail(error, "trailing fields after '" + std::string(verb) +
                             "': " + std::string(line));
    }
    out.op = verb == "flush"   ? CommandLine::Op::kFlush
             : verb == "stats" ? CommandLine::Op::kStats
                               : CommandLine::Op::kQuit;
    return ParseStatus::kCommand;
  }
  return fail(error, "unknown command verb: " + std::string(verb));
}

std::string format_response(const Response& r) {
  return format_response(r, digest_row(r.h));
}

std::string format_response(const Response& r, std::uint64_t digest) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "ok %" PRIu64 " %" PRIu64 " %lld %016" PRIx64, r.session,
                r.seq, static_cast<long long>(r.batch), digest);
  return buf;
}

std::string format_error(std::string_view message) {
  return "err " + std::string(message);
}

std::string format_greeting(std::uint64_t conn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "hi %" PRIu64, conn);
  return buf;
}

std::string format_bye(std::uint64_t submitted, std::uint64_t responses) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "bye submitted=%" PRIu64 " responses=%" PRIu64,
                submitted, responses);
  return buf;
}

std::string format_pos(SessionId session, const SessionDigest& d) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "pos %" PRIu64 " %" PRIu64 " %016" PRIx64,
                session, d.steps, d.digest);
  return buf;
}

std::string format_stats(const StatsSnapshot& s) {
  char buf[448];
  std::snprintf(buf, sizeof(buf),
                "stat submitted=%" PRIu64 " responses=%" PRIu64
                " shed=%" PRIu64 " now_us=%lld created=%" PRIu64
                " ttl_resets=%" PRIu64 " evicted=%" PRIu64
                " spilled=%" PRIu64 " restored=%" PRIu64
                " restore_corrupt=%" PRIu64 " spill_active=%lld/%lld"
                " timeouts=%" PRIu64 " restarts=%" PRIu64
                " quarantined=%lld journal_active=%lld/%lld durability=%s",
                s.submitted, s.responses, s.shed,
                static_cast<long long>(s.now_us), s.created, s.ttl_resets,
                s.evicted, s.spilled, s.restored, s.restore_corrupt,
                static_cast<long long>(s.spill_active),
                static_cast<long long>(s.shards), s.timeouts, s.restarts,
                static_cast<long long>(s.quarantined),
                static_cast<long long>(s.journal_active),
                static_cast<long long>(s.shards),
                s.durability.empty() ? "off" : s.durability.c_str());
  // Model identity appended after the counters so existing key
  // positions never move. The name is caller data of unbounded length,
  // so this tail goes through std::string, not the fixed buffer.
  std::string line = buf;
  char tail[128];
  std::snprintf(tail, sizeof(tail), " layers=%lld dh=%lld vocab=%lld quant=%s",
                static_cast<long long>(s.layers), static_cast<long long>(s.dh),
                static_cast<long long>(s.vocab), s.quant ? "int8" : "off");
  line += " model=";
  line += s.model.empty() ? "random" : s.model;
  line += tail;
  return line;
}

}  // namespace zss::serve
