// Epoll-multiplexed connection front end of the live server.
//
// `zss_serve --live --socket/--tcp` used to accept ONE client and
// share one output stream. This layer is the production front door the
// ROADMAP's "millions of users" item asks for: a single event-loop
// thread multiplexes a UNIX listener and a TCP listener over epoll,
// owns every connection's read buffer and write queue, and feeds
// parsed `step` lines into LiveServer::submit tagged with the issuing
// connection's id (Request::client). Shard workers stay exactly what
// PR 4 made them — the front end adds connections, never threads that
// touch a shard.
//
// Routing: every request carries its connection id, every response
// echoes it (serve/request.h), and the response sink drops the
// formatted "ok" line into that one connection's write queue — a
// response can never be delivered to a connection that did not issue
// its request, by construction. `err` (parse/shed) and `stat` lines
// are generated on the event loop for the connection that triggered
// them; they never fan out.
//
// Threading model (docs/serving.md "Connection front end"):
//
//   event-loop thread                      shard worker threads
//   ─────────────────                      ────────────────────
//   epoll_wait ──► accept / read bytes
//     parse lines ──► LiveServer::submit(session, token, conn)
//                         │ (stamping mutex, unchanged)
//                         ▼
//                    ShardWorker ──► sink: fold digest, format "ok",
//                                          push (conn, line) ──► outbox
//   ◄──────────────────── eventfd wake ─────────────┘
//   distribute outbox ──► per-connection write queues
//   non-blocking send; EPOLLOUT on partial writes
//
// The event loop is the only thread that touches sockets or connection
// state; sinks only append to the outbox under a short lock and write
// the eventfd. A connection whose reader stalls accumulates output in
// its own queue (and, past FrontendConfig::max_write_buffer, stops
// being *read* — backpressure — so a pipelining client cannot buy
// unbounded server memory); it can never block another connection or a
// shard worker. Per-connection shedding (`max_queue`) bounds each
// client's in-flight requests independently — fair: one client at its
// cap sheds alone, everyone else is untouched.
//
// Determinism: the front end changes who *receives* lines, never what
// is computed. Stamping still defines the one total order; the digest
// table is folded in the same per-shard sinks as stdin mode; a
// recorded multiplexed run replays bit-identically through the
// virtual-clock path at any shard count (CI diffs exactly that with 64
// mixed UNIX+TCP clients churning mid-run).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "serve/pool.h"
#include "serve/protocol.h"
#include "serve/worker.h"

namespace zss::serve {

struct FrontendConfig {
  /// UNIX listener path. Empty = no UNIX listener. A stale socket file
  /// left by a crashed previous run is unlinked and reclaimed; anything
  /// else living at the path is a startup refusal (never deleted).
  std::string unix_path;
  /// TCP listener. Port < 0 = no TCP listener; 0 = ephemeral (resolved
  /// port readable via tcp_port() after start()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Per-connection backpressure: a `step` arriving while this many of
  /// the connection's requests are still in flight is shed with an
  /// `err` to that client only. 0 = unbounded.
  num::Index max_queue = 0;
  /// A connection whose write queue exceeds this many bytes stops
  /// being read until the queue drains below half — backpressure
  /// toward a pipelining client that is not consuming its responses.
  std::size_t max_write_buffer = std::size_t{4} << 20;
  /// A line longer than this without a newline is a protocol violation:
  /// the connection gets an `err` and is drained/closed.
  std::size_t max_line = std::size_t{1} << 16;
  /// Shutdown grace for flushing final write queues to slow readers.
  std::int64_t linger_us = 2'000'000;
};

/// Lifetime counters of the front end. Written only by the event-loop
/// thread; read them after join() (tests do), or accept races.
struct FrontendStats {
  std::uint64_t accepted = 0;
  std::uint64_t disconnected = 0;
  std::uint64_t shed = 0;                // per-connection cap rejections
  std::uint64_t dropped_responses = 0;   // lines owed to dead connections
  std::uint64_t oversize_lines = 0;      // max_line protocol violations
  std::uint64_t read_pauses = 0;         // write-buffer backpressure engaged
  std::uint64_t discarded_partial = 0;   // unterminated bytes at disconnect
};

/// The front end owns its LiveServer (constructed with a sink that
/// folds the per-shard digest tables and routes responses) and one
/// event-loop thread. Lifecycle: construct → start() → [clients; a
/// `quit` line or stop()] → join() → digests()/stats()/recorded trace.
class Frontend {
 public:
  /// Borrows the pool for the front end's lifetime. `live` configures
  /// the underlying LiveServer; its max_queue (per *shard*) composes
  /// with the per-connection cap but is normally left 0 in favor of
  /// the fair per-client cap here.
  Frontend(EnginePool& pool, FrontendConfig config, LiveConfig live = {});
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Binds the configured listeners and starts the event loop. False
  /// on failure (error explains; nothing is left bound). At least one
  /// listener must be configured.
  bool start(std::string* error);

  /// Resolved TCP port (meaningful after start() when tcp_port >= 0;
  /// the point of passing 0 is reading the kernel-chosen port here).
  int tcp_port() const { return resolved_tcp_port_; }

  /// Begins graceful shutdown, exactly like a client's `quit` line:
  /// stop accepting, drain every in-flight request, send `bye`, flush
  /// within the linger budget. Async-signal-safe (atomic flag + an
  /// eventfd write), so a SIGINT handler may call it.
  void stop();

  /// Waits for the event loop to exit (after a `quit` line or stop()).
  void join();

  const LiveServer& server() const { return *server_; }
  /// Mutable access for the supervisor (restart_shard) and tests.
  LiveServer& server() { return *server_; }

  /// Merged per-session digest table — the pool's authoritative
  /// per-shard tables (SessionStore::digests_copy), the same table
  /// stdin mode and replay mode print and the table journal recovery
  /// reconstructs. Thread-safe, but only quiescent after join().
  DigestTable digests() const;

  /// Call after join() (see FrontendStats).
  const FrontendStats& stats() const { return stats_; }

 private:
  struct Conn;

  void run();
  void accept_all(int listener, bool tcp);
  void handle_read(Conn& conn);
  void handle_line(Conn& conn, std::string_view line);
  void push_line(Conn& conn, std::string line);
  bool flush_conn(Conn& conn);  // false = connection dropped
  void drain_outbox();
  void update_events(Conn& conn);
  void maybe_close(Conn& conn);
  void drop_conn(Conn& conn);
  void begin_quit();
  void close_listeners();
  void wake();

  EnginePool* pool_;
  FrontendConfig config_;
  std::unique_ptr<LiveServer> server_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int resolved_tcp_port_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};

  // Outbox: the only cross-thread state. Shard-worker sinks append
  // (conn, line) under the short lock; the loop swaps and distributes.
  std::mutex out_mu_;
  std::vector<std::pair<std::uint64_t, std::string>> outbox_, out_taking_;

  // Everything below is event-loop-thread private.
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 1;
  bool quit_started_ = false;
  std::int64_t linger_deadline_us_ = 0;
  FrontendStats stats_;
};

/// Snapshots the server + per-shard session-store counters into the
/// `stat` line payload (shared by the front end and stdin mode).
StatsSnapshot snapshot_stats(const LiveServer& server, const EnginePool& pool);

}  // namespace zss::serve
