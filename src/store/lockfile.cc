#include "store/lockfile.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace zss::store {

bool DirLock::acquire(const std::string& dir) {
  release();
  took_over_stale_ = false;
  previous_pid_ = -1;
  path_ = dir + "/LOCK";
  // O_EXCL-free two-step: open-or-create, then flock. Whether the file
  // pre-existed tells us a previous owner was here; whether the flock
  // succeeds tells us it is gone (flock dies with its process).
  const bool pre_existing = ::access(path_.c_str(), F_OK) == 0;
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    error_ = "cannot create " + path_ + ": " + std::strerror(errno);
    return false;
  }
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    error_ = path_ + " is locked by another running instance";
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (pre_existing) {
    // Free lock + leftover file = the previous owner is dead. Read the
    // pid it recorded (before we overwrite it with ours) so startup
    // diagnostics can name it.
    took_over_stale_ = true;
    char prev[32] = {};
    const ssize_t r = ::pread(fd_, prev, sizeof(prev) - 1, 0);
    if (r > 0) {
      long pid = 0;
      if (std::sscanf(prev, "%ld", &pid) == 1 && pid > 0) previous_pid_ = pid;
    }
  }
  // Record the owner pid for operators; informational only — the flock
  // is the actual mutual exclusion (and dies with the process).
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%ld\n", (long)::getpid());
  if (::ftruncate(fd_, 0) == 0 && n > 0) {
    [[maybe_unused]] const auto w = ::write(fd_, buf, (size_t)n);
  }
  error_.clear();
  return true;
}

void DirLock::release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
  }
  // The LOCK file itself stays behind: removing it would let a third
  // instance lock a fresh inode while a second still holds the old
  // one — the classic unlink race. An unlocked leftover file is inert.
}

}  // namespace zss::store
