#include "store/io.h"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace zss::store {

namespace {

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t write_at(std::uint64_t off, const void* data,
                       std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t done = 0;
    while (done < n) {
      const ssize_t w = ::pwrite(fd_, p + done, n - done,
                                 static_cast<off_t>(off + done));
      if (w <= 0) break;
      done += static_cast<std::size_t>(w);
    }
    return done;
  }

  std::size_t read_at(std::uint64_t off, void* data, std::size_t n) override {
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t done = 0;
    while (done < n) {
      const ssize_t r =
          ::pread(fd_, p + done, n - done, static_cast<off_t>(off + done));
      if (r <= 0) break;
      done += static_cast<std::size_t>(r);
    }
    return done;
  }

  bool sync() override { return ::fsync(fd_) == 0; }

  bool truncate(std::uint64_t size) override {
    return ::ftruncate(fd_, static_cast<off_t>(size)) == 0;
  }

  std::uint64_t size() override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<std::uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class MemFile final : public File {
 public:
  explicit MemFile(std::shared_ptr<std::vector<std::uint8_t>> data)
      : data_(std::move(data)) {}

  std::size_t write_at(std::uint64_t off, const void* data,
                       std::size_t n) override {
    if (off + n > data_->size()) data_->resize(off + n, 0);
    std::memcpy(data_->data() + off, data, n);
    return n;
  }

  std::size_t read_at(std::uint64_t off, void* data, std::size_t n) override {
    if (off >= data_->size()) return 0;
    const std::size_t avail =
        std::min<std::uint64_t>(n, data_->size() - off);
    std::memcpy(data, data_->data() + off, avail);
    return avail;
  }

  bool sync() override { return true; }

  bool truncate(std::uint64_t size) override {
    data_->resize(size, 0);
    return true;
  }

  std::uint64_t size() override { return data_->size(); }

 private:
  std::shared_ptr<std::vector<std::uint8_t>> data_;
};

}  // namespace

std::unique_ptr<File> PosixEnv::open(const std::string& name,
                                     bool truncate_existing) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate_existing) flags |= O_TRUNC;
  const int fd = ::open(name.c_str(), flags, 0644);
  if (fd < 0) return nullptr;
  return std::make_unique<PosixFile>(fd);
}

bool PosixEnv::exists(const std::string& name) {
  struct stat st{};
  return ::stat(name.c_str(), &st) == 0;
}

bool PosixEnv::rename(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str()) == 0;
}

bool PosixEnv::remove(const std::string& name) {
  return ::unlink(name.c_str()) == 0;
}

std::unique_ptr<File> MemEnv::open(const std::string& name,
                                   bool truncate_existing) {
  auto& slot = files_[name];
  if (slot == nullptr) {
    slot = std::make_shared<std::vector<std::uint8_t>>();
  } else if (truncate_existing) {
    slot->clear();
  }
  return std::make_unique<MemFile>(slot);
}

bool MemEnv::exists(const std::string& name) {
  return files_.count(name) != 0;
}

bool MemEnv::rename(const std::string& from, const std::string& to) {
  const auto it = files_.find(from);
  if (it == files_.end()) return false;
  files_[to] = it->second;
  files_.erase(it);
  return true;
}

bool MemEnv::remove(const std::string& name) {
  return files_.erase(name) != 0;
}

std::vector<std::uint8_t>* MemEnv::bytes(const std::string& name) {
  const auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second.get();
}

void FaultyFile::corrupt_byte(std::uint64_t off, std::uint8_t mask) {
  std::uint8_t b = 0;
  if (inner_->read_at(off, &b, 1) != 1) return;
  b = static_cast<std::uint8_t>(b ^ mask);
  inner_->write_at(off, &b, 1);
}

std::size_t FaultyFile::write_at(std::uint64_t off, const void* data,
                                 std::size_t n) {
  std::size_t allowed = n;
  if (has_write_limit_) {
    if (written_ >= write_limit_) return 0;
    allowed = std::min<std::uint64_t>(n, write_limit_ - written_);
  }
  const std::size_t wrote = inner_->write_at(off, data, allowed);
  written_ += wrote;
  return wrote;  // < n exactly when the limit tore this write
}

std::size_t FaultyFile::read_at(std::uint64_t off, void* data, std::size_t n) {
  std::size_t want = n;
  if (has_short_read_) {
    want = std::min(n, short_read_bytes_);
    has_short_read_ = false;
  }
  return inner_->read_at(off, data, want);
}

bool FaultyFile::sync() {
  if (failing_syncs_ > 0) {
    --failing_syncs_;
    return false;
  }
  return inner_->sync();
}

bool FaultyFile::truncate(std::uint64_t size) { return inner_->truncate(size); }

std::uint64_t FaultyFile::size() { return inner_->size(); }

}  // namespace zss::store
