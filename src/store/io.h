// Injectable I/O of the durable session store.
//
// The segment store (store/segment_store.h) never touches the
// filesystem directly: every byte goes through a File and every
// open/rename/remove through an Env. Production uses PosixEnv; tests
// substitute MemEnv (a process-local filesystem of byte vectors) and
// wrap files in FaultyFile to inject the failures a real disk can
// produce — torn writes that stop at an arbitrary byte, short reads,
// fsync errors, bit rot — so the store's recovery and degradation
// paths are exercised deterministically, byte offset by byte offset,
// instead of waiting for the disk to misbehave in production
// (tests/store/fault_injection_test.cc).
//
// Contract notes:
//  * Files are positional (pread/pwrite style): no implicit cursor, so
//    a failed write never leaves hidden stream state behind. write_at
//    returns the number of bytes durably *attempted* — a short count
//    models a torn write whose prefix may or may not have hit the
//    platter, exactly the case recovery has to tolerate.
//  * sync() is the only durability point. A record is "committed" once
//    the store has observed a successful sync covering it; everything
//    after the last sync may vanish or arrive torn.
//  * Env::rename is atomic (POSIX rename semantics): the destination
//    is either the old file or the complete new one, never a mix. It
//    is the commit point of compaction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "num/types.h"

namespace zss::store {

/// Positional byte file. Implementations need not be thread-safe; a
/// File belongs to exactly one SegmentStore, which belongs to exactly
/// one shard (the serving layer's shared-nothing discipline).
class File {
 public:
  virtual ~File() = default;

  /// Writes `n` bytes at absolute offset `off`, extending the file if
  /// needed. Returns the bytes written; < n means the write tore (a
  /// crash, a full disk) — the prefix may be present, nothing after it.
  virtual std::size_t write_at(std::uint64_t off, const void* data,
                               std::size_t n) = 0;

  /// Reads up to `n` bytes at `off`. Returns bytes read; < n models a
  /// short read (EOF or I/O error) — callers must treat the tail as
  /// absent, never as zeros.
  virtual std::size_t read_at(std::uint64_t off, void* data,
                              std::size_t n) = 0;

  /// Durability barrier. False = the bytes since the previous barrier
  /// must be considered uncommitted.
  virtual bool sync() = 0;

  /// Truncates (or extends with zeros) to `size`. Recovery uses this to
  /// cut a torn tail off; it must itself be crash-tolerant in the sense
  /// that re-running it is harmless.
  virtual bool truncate(std::uint64_t size) = 0;

  virtual std::uint64_t size() = 0;
};

/// Minimal filesystem surface: open/rename/remove by name. rename is
/// the atomic commit primitive of compaction.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if absent) the file at `name`. Returns nullptr on
  /// failure. `truncate_existing` empties an existing file first.
  virtual std::unique_ptr<File> open(const std::string& name,
                                     bool truncate_existing) = 0;

  virtual bool exists(const std::string& name) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual bool rename(const std::string& from, const std::string& to) = 0;

  virtual bool remove(const std::string& name) = 0;
};

/// Real filesystem via POSIX pread/pwrite/fsync. Stateless; one
/// instance may back any number of stores.
class PosixEnv final : public Env {
 public:
  std::unique_ptr<File> open(const std::string& name,
                             bool truncate_existing) override;
  bool exists(const std::string& name) override;
  bool rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& name) override;
};

/// In-memory filesystem for tests and fault injection: every "file" is
/// a shared byte vector, so a FaultyFile wrapper and a reopened store
/// observe the same bytes — including the prefix of a torn write.
class MemEnv final : public Env {
 public:
  std::unique_ptr<File> open(const std::string& name,
                             bool truncate_existing) override;
  bool exists(const std::string& name) override;
  bool rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& name) override;

  /// Direct access to a file's bytes (corruption injection, forensic
  /// assertions). Null when the file does not exist.
  std::vector<std::uint8_t>* bytes(const std::string& name);

 private:
  std::map<std::string, std::shared_ptr<std::vector<std::uint8_t>>> files_;
};

/// Fault-injection wrapper: forwards to an inner File until a
/// configured trigger fires. All triggers are one-shot and explicit so
/// a test reads as a script of the exact failure it means to inject.
class FaultyFile final : public File {
 public:
  explicit FaultyFile(std::unique_ptr<File> inner)
      : inner_(std::move(inner)) {}

  /// Every write that would extend the cumulative written-byte count
  /// past `limit` stops at `limit` (the prefix is written through) and
  /// reports a torn write; later writes fail outright. Models a crash
  /// or a full disk at an exact byte offset.
  void fail_after_written_bytes(std::uint64_t limit) {
    write_limit_ = limit;
    has_write_limit_ = true;
  }

  /// The next `count` sync() calls return false.
  void fail_syncs(int count) { failing_syncs_ = count; }

  /// The next read_at returns at most `max_bytes` (a short read).
  void short_next_read(std::size_t max_bytes) {
    short_read_bytes_ = max_bytes;
    has_short_read_ = true;
  }

  /// XORs `mask` into the byte at absolute offset `off` (bit rot).
  /// Applied immediately through the inner file.
  void corrupt_byte(std::uint64_t off, std::uint8_t mask);

  std::uint64_t written_bytes() const { return written_; }

  std::size_t write_at(std::uint64_t off, const void* data,
                       std::size_t n) override;
  std::size_t read_at(std::uint64_t off, void* data, std::size_t n) override;
  bool sync() override;
  bool truncate(std::uint64_t size) override;
  std::uint64_t size() override;

 private:
  std::unique_ptr<File> inner_;
  std::uint64_t written_ = 0;  // cumulative bytes accepted
  std::uint64_t write_limit_ = 0;
  bool has_write_limit_ = false;
  int failing_syncs_ = 0;
  std::size_t short_read_bytes_ = 0;
  bool has_short_read_ = false;
};

}  // namespace zss::store
