#include "store/journal.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "store/crc32c.h"

namespace zss::store {

namespace {

constexpr std::uint8_t kMagic[8] = {'Z', 'S', 'S', 'J', 'N', 'L', '1', '\0'};
constexpr std::uint8_t kCkptMagic[8] = {'Z', 'S', 'S', 'J', 'C',
                                        'K', '1', '\0'};
constexpr std::uint64_t kFileHeaderSize = 16;
constexpr std::uint64_t kRecordHeaderSize = 72;
constexpr std::uint64_t kCkptHeaderSize = 40;
constexpr std::uint64_t kCkptDigestEntrySize = 24;

// Record header byte layout (after the u32 crc at offset 0):
//   [4]  u32 kind     [8]  u64 lsn         [16] u64 id
//   [24] u64 gen      [32] u64 steps       [40] i64 arrival
//   [48] u64 d_steps  [56] u64 digest      [64] u32 payload_len
//   [68] u32 reserved
template <typename T>
void put(std::vector<std::uint8_t>& buf, std::size_t off, T v) {
  std::memcpy(buf.data() + off, &v, sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

bool valid_kind(std::uint32_t k) {
  return k >= static_cast<std::uint32_t>(JournalRecordKind::kCreate) &&
         k <= static_cast<std::uint32_t>(JournalRecordKind::kErase);
}

}  // namespace

Journal::Journal(Env& env, JournalConfig cfg, num::Index state_width)
    : env_(env), cfg_(std::move(cfg)), width_(state_width) {
  ZSS_EXPECTS(state_width >= 1);
  ZSS_EXPECTS(!cfg_.path.empty());
  ZSS_EXPECTS(cfg_.max_write_attempts >= 1);
  // Leftover .tmp files are incomplete checkpoints that never reached
  // their rename commit point; the base files are authoritative.
  for (const std::string& tmp : {cfg_.path + ".tmp", cfg_.path + ".ckpt.tmp"}) {
    if (env_.exists(tmp)) {
      env_.remove(tmp);
      ++orphans_removed_;
    }
  }
  file_ = env_.open(cfg_.path, /*truncate_existing=*/false);
  if (file_ == nullptr) return;  // degraded from birth: undurable
  load_checkpoint();
  if (!open_error_.empty()) {
    // The checkpoint provably belongs to a different model shape:
    // refuse the whole journal rather than replay records into the
    // wrong shape or truncate history that another configuration owns.
    file_.reset();
    return;
  }
  recover();
}

bool Journal::write_file_header() {
  std::vector<std::uint8_t> hdr(kFileHeaderSize, 0);
  std::memcpy(hdr.data(), kMagic, sizeof(kMagic));
  put<std::uint32_t>(hdr, 8, static_cast<std::uint32_t>(width_));
  put<std::uint32_t>(hdr, 12, crc32c(0, hdr.data(), 12));
  if (file_->write_at(0, hdr.data(), hdr.size()) != hdr.size()) return false;
  if (!file_->truncate(kFileHeaderSize)) return false;
  if (!file_->sync()) return false;
  tail_ = kFileHeaderSize;
  return true;
}

bool Journal::load_checkpoint() {
  const std::string ckpt = cfg_.path + ".ckpt";
  if (!env_.exists(ckpt)) return false;
  auto in = env_.open(ckpt, /*truncate_existing=*/false);
  if (in == nullptr) {
    ++checkpoint_corrupt_;
    return false;
  }

  // A checkpoint is all-or-nothing: read the whole image, verify one
  // trailing CRC over everything before it, and only then parse. Any
  // failure discards the checkpoint whole (degrade to journal-only
  // replay) — never a partial apply.
  const std::uint64_t fsize = in->size();
  if (fsize < kCkptHeaderSize + sizeof(std::uint32_t)) {
    ++checkpoint_corrupt_;
    return false;
  }
  std::vector<std::uint8_t> img(fsize);
  if (in->read_at(0, img.data(), fsize) != fsize) {
    ++checkpoint_corrupt_;
    return false;
  }
  const auto stored_crc = get<std::uint32_t>(img.data() + fsize - 4);
  if (std::memcmp(img.data(), kCkptMagic, sizeof(kCkptMagic)) != 0 ||
      stored_crc != crc32c(0, img.data(), fsize - 4)) {
    ++checkpoint_corrupt_;
    return false;
  }
  const auto ckpt_width = get<std::uint32_t>(img.data() + 8);
  if (ckpt_width != static_cast<std::uint32_t>(width_)) {
    // CRC-valid but a different state_width: a healthy checkpoint of a
    // different model, not corruption. Discarding it would silently
    // erase committed session history on the next truncate — refuse to
    // open instead (the constructor resets file_ when it sees this).
    open_error_ = "checkpoint " + ckpt + " holds state_width " +
                  std::to_string(ckpt_width) + " but this model needs " +
                  std::to_string(width_) +
                  "; refusing to open (move/delete the spill dir or point "
                  "it elsewhere)";
    return false;
  }

  const auto last_lsn = get<std::uint64_t>(img.data() + 16);
  const auto n_sessions = get<std::uint64_t>(img.data() + 24);
  const auto n_digests = get<std::uint64_t>(img.data() + 32);
  const std::uint64_t w = static_cast<std::uint64_t>(width_);
  const std::uint64_t session_entry = 32 + 2 * w * sizeof(float);
  // Overflow-safe size accounting: every count is bounded by the file
  // size before any multiply can wrap.
  const std::uint64_t body = fsize - kCkptHeaderSize - 4;
  if (n_digests > body / kCkptDigestEntrySize ||
      n_sessions > body / session_entry ||
      n_digests * kCkptDigestEntrySize + n_sessions * session_entry != body) {
    ++checkpoint_corrupt_;
    return false;
  }

  std::vector<CheckpointDigest> digests;
  digests.reserve(n_digests);
  const std::uint8_t* p = img.data() + kCkptHeaderSize;
  for (std::uint64_t i = 0; i < n_digests; ++i) {
    CheckpointDigest d;
    d.id = get<std::uint64_t>(p);
    d.steps = get<std::uint64_t>(p + 8);
    d.digest = get<std::uint64_t>(p + 16);
    digests.push_back(d);
    p += kCkptDigestEntrySize;
  }
  std::vector<CheckpointSession> sessions;
  sessions.reserve(n_sessions);
  for (std::uint64_t i = 0; i < n_sessions; ++i) {
    CheckpointSession s;
    s.id = get<std::uint64_t>(p);
    s.generation = get<std::uint64_t>(p + 8);
    s.steps = get<std::uint64_t>(p + 16);
    s.arrival_us = get<std::int64_t>(p + 24);
    s.h.resize(w);
    s.c.resize(w);
    std::memcpy(s.h.data(), p + 32, w * sizeof(float));
    std::memcpy(s.c.data(), p + 32 + w * sizeof(float), w * sizeof(float));
    max_arrival_us_ = std::max(max_arrival_us_, s.arrival_us);
    sessions.push_back(std::move(s));
    p += session_entry;
  }

  watermark_lsn_ = last_lsn;
  next_lsn_ = last_lsn + 1;
  ckpt_sessions_ = std::move(sessions);
  ckpt_digests_ = std::move(digests);
  return true;
}

void Journal::recover() {
  const std::uint64_t fsize = file_->size();
  std::vector<std::uint8_t> hdr(kFileHeaderSize);
  bool header_ok = false;
  if (fsize >= kFileHeaderSize &&
      file_->read_at(0, hdr.data(), hdr.size()) == hdr.size() &&
      std::memcmp(hdr.data(), kMagic, sizeof(kMagic)) == 0 &&
      get<std::uint32_t>(hdr.data() + 12) == crc32c(0, hdr.data(), 12)) {
    const auto file_width = get<std::uint32_t>(hdr.data() + 8);
    if (file_width != static_cast<std::uint32_t>(width_)) {
      // A healthy journal written at a different state_width — the
      // same spill dir reopened under a different model. Truncating
      // here would silently destroy all committed session history, so
      // refuse to open and leave the file byte-for-byte untouched.
      open_error_ = "journal " + cfg_.path + " holds state_width " +
                    std::to_string(file_width) + " but this model needs " +
                    std::to_string(width_) +
                    "; refusing to open (move/delete the spill dir or "
                    "point it elsewhere)";
      file_.reset();
      return;
    }
    header_ok = true;
  }
  if (!header_ok) {
    if (fsize > kFileHeaderSize) {
      // Bad magic or checksum with records behind it: header bit rot
      // on a populated journal, not a torn first write. Starting fresh
      // would orphan every committed record — refuse instead.
      open_error_ = "journal " + cfg_.path +
                    " has a corrupt file header ahead of " +
                    std::to_string(fsize - kFileHeaderSize) +
                    " bytes of records; refusing to open";
      file_.reset();
      return;
    }
    // Empty file or a crash inside the very first header write: no
    // records can exist yet (the checkpoint, if any, still stands on
    // its own), start the journal fresh.
    if (!write_file_header()) file_.reset();
    return;
  }

  // Scan forward, record by record; the first short read, garbage
  // length, unknown kind or CRC mismatch marks the torn tail. The
  // records themselves are replayed later (replay() re-reads the file)
  // — this pass only establishes the valid prefix, the LSN horizon and
  // the newest arrival stamp.
  const std::uint64_t update_payload =
      static_cast<std::uint64_t>(width_) * 2 * sizeof(float);
  std::uint64_t off = kFileHeaderSize;
  std::vector<std::uint8_t> rec;
  while (off + kRecordHeaderSize <= fsize) {
    rec.resize(kRecordHeaderSize);
    if (file_->read_at(off, rec.data(), kRecordHeaderSize) !=
        kRecordHeaderSize) {
      break;
    }
    const auto kind = get<std::uint32_t>(rec.data() + 4);
    const auto payload_len = get<std::uint32_t>(rec.data() + 64);
    const std::uint64_t want_payload =
        kind == static_cast<std::uint32_t>(JournalRecordKind::kUpdate)
            ? update_payload
            : 0;
    if (!valid_kind(kind) || payload_len != want_payload ||
        off + kRecordHeaderSize + payload_len > fsize) {
      break;
    }
    rec.resize(kRecordHeaderSize + payload_len);
    if (file_->read_at(off + kRecordHeaderSize, rec.data() + kRecordHeaderSize,
                       payload_len) != payload_len) {
      break;
    }
    const auto stored_crc = get<std::uint32_t>(rec.data());
    if (stored_crc != crc32c(0, rec.data() + 4, rec.size() - 4)) break;

    const auto lsn = get<std::uint64_t>(rec.data() + 8);
    next_lsn_ = std::max(next_lsn_, lsn + 1);
    if (lsn > watermark_lsn_) {
      max_arrival_us_ =
          std::max(max_arrival_us_, get<std::int64_t>(rec.data() + 40));
      ++recovered_records_;
    }
    off += rec.size();
  }

  if (off < fsize) {
    truncated_tail_bytes_ += fsize - off;
    if (!file_->truncate(off) || !file_->sync()) {
      file_.reset();
      return;
    }
  }
  tail_ = off;
}

void Journal::replay(const std::function<void(const JournalRecord&)>& fn) {
  if (!ok()) return;
  const std::uint64_t w = static_cast<std::uint64_t>(width_);
  const std::uint64_t update_payload = w * 2 * sizeof(float);
  replay_state_.resize(2 * w);
  std::uint64_t off = kFileHeaderSize;
  std::vector<std::uint8_t> rec;
  // recover() already validated [header, tail_) whole; this pass just
  // decodes. A record failing re-validation here means the medium
  // changed under us mid-recovery — stop at the last good prefix.
  while (off + kRecordHeaderSize <= tail_) {
    rec.resize(kRecordHeaderSize);
    if (file_->read_at(off, rec.data(), kRecordHeaderSize) !=
        kRecordHeaderSize) {
      break;
    }
    const auto payload_len = get<std::uint32_t>(rec.data() + 64);
    if (payload_len > update_payload ||
        off + kRecordHeaderSize + payload_len > tail_) {
      break;
    }
    rec.resize(kRecordHeaderSize + payload_len);
    if (file_->read_at(off + kRecordHeaderSize, rec.data() + kRecordHeaderSize,
                       payload_len) != payload_len) {
      break;
    }

    JournalRecord r;
    r.kind = static_cast<JournalRecordKind>(get<std::uint32_t>(rec.data() + 4));
    r.lsn = get<std::uint64_t>(rec.data() + 8);
    r.id = get<std::uint64_t>(rec.data() + 16);
    r.generation = get<std::uint64_t>(rec.data() + 24);
    r.steps = get<std::uint64_t>(rec.data() + 32);
    r.arrival_us = get<std::int64_t>(rec.data() + 40);
    r.digest_steps = get<std::uint64_t>(rec.data() + 48);
    r.digest = get<std::uint64_t>(rec.data() + 56);
    if (payload_len != 0) {
      std::memcpy(replay_state_.data(), rec.data() + kRecordHeaderSize,
                  payload_len);
      r.h = replay_state_.data();
      r.c = replay_state_.data() + w;
    }
    off += rec.size();
    // The checkpoint already covers LSNs up to the watermark; replaying
    // them would double-apply non-idempotent absolute state.
    if (r.lsn <= watermark_lsn_) continue;
    fn(r);
  }
}

void Journal::clear_recovered() {
  ckpt_sessions_.clear();
  ckpt_sessions_.shrink_to_fit();
  ckpt_digests_.clear();
  ckpt_digests_.shrink_to_fit();
}

bool Journal::append(JournalRecordKind kind, std::uint64_t id,
                     std::uint64_t generation, std::uint64_t steps,
                     std::int64_t arrival_us, std::uint64_t digest_steps,
                     std::uint64_t digest, const float* h, const float* c) {
  if (!enabled()) return false;
  const std::uint64_t w = static_cast<std::uint64_t>(width_);
  const std::size_t payload_len =
      kind == JournalRecordKind::kUpdate ? 2 * w * sizeof(float) : 0;
  ZSS_EXPECTS(payload_len == 0 || (h != nullptr && c != nullptr));

  scratch_.assign(kRecordHeaderSize + payload_len, 0);
  put<std::uint32_t>(scratch_, 4, static_cast<std::uint32_t>(kind));
  put<std::uint64_t>(scratch_, 8, next_lsn_);
  put<std::uint64_t>(scratch_, 16, id);
  put<std::uint64_t>(scratch_, 24, generation);
  put<std::uint64_t>(scratch_, 32, steps);
  put<std::int64_t>(scratch_, 40, arrival_us);
  put<std::uint64_t>(scratch_, 48, digest_steps);
  put<std::uint64_t>(scratch_, 56, digest);
  put<std::uint32_t>(scratch_, 64, static_cast<std::uint32_t>(payload_len));
  if (payload_len != 0) {
    std::memcpy(scratch_.data() + kRecordHeaderSize, h, w * sizeof(float));
    std::memcpy(scratch_.data() + kRecordHeaderSize + w * sizeof(float), c,
                w * sizeof(float));
  }
  put<std::uint32_t>(scratch_, 0,
                     crc32c(0, scratch_.data() + 4, scratch_.size() - 4));

  // Bounded retry from the same tail offset (a torn prefix is simply
  // overwritten). Unlike the spill tier, the append does NOT sync —
  // commit() is the group-commit barrier at the batch boundary.
  std::lock_guard<std::timed_mutex> lock(write_mu_);
  if (poisoned()) return false;
  bool written = false;
  for (int attempt = 0; attempt < cfg_.max_write_attempts; ++attempt) {
    if (file_->write_at(tail_, scratch_.data(), scratch_.size()) ==
        scratch_.size()) {
      written = true;
      break;
    }
    ++write_errors_;
  }
  if (!written) {
    // Degrade: stop journaling, keep serving undurably. Best-effort
    // tail cleanup; recovery cuts any debris either way.
    file_->truncate(tail_);
    disable();
    return false;
  }
  tail_ += scratch_.size();
  ++next_lsn_;
  ++appended_;
  dirty_ = true;
  return true;
}

bool Journal::commit() {
  if (!enabled()) return false;
  if (!dirty_) return true;
  std::lock_guard<std::timed_mutex> lock(write_mu_);
  if (poisoned()) return false;
  if (cfg_.sync == JournalSync::kBatch) {
    bool synced = false;
    for (int attempt = 0; attempt < cfg_.max_write_attempts; ++attempt) {
      if (file_->sync()) {
        synced = true;
        break;
      }
      ++write_errors_;
    }
    if (!synced) {
      // A failed fsync leaves the unsynced suffix in limbo; the RAM
      // state is still authoritative, so degrade to undurable rather
      // than guess what the medium kept.
      disable();
      return false;
    }
  }
  dirty_ = false;
  ++commits_;
  return true;
}

bool Journal::checkpoint(const std::vector<CheckpointSession>& sessions,
                         const std::vector<CheckpointDigest>& digests) {
  if (!enabled()) return false;
  const std::uint64_t w = static_cast<std::uint64_t>(width_);
  const std::uint64_t session_entry = 32 + 2 * w * sizeof(float);
  const std::uint64_t watermark = next_lsn_ - 1;

  std::vector<std::uint8_t> img(kCkptHeaderSize +
                                    digests.size() * kCkptDigestEntrySize +
                                    sessions.size() * session_entry + 4,
                                0);
  std::memcpy(img.data(), kCkptMagic, sizeof(kCkptMagic));
  put<std::uint32_t>(img, 8, static_cast<std::uint32_t>(width_));
  put<std::uint64_t>(img, 16, watermark);
  put<std::uint64_t>(img, 24, sessions.size());
  put<std::uint64_t>(img, 32, digests.size());
  std::size_t p = kCkptHeaderSize;
  for (const CheckpointDigest& d : digests) {
    put<std::uint64_t>(img, p, d.id);
    put<std::uint64_t>(img, p + 8, d.steps);
    put<std::uint64_t>(img, p + 16, d.digest);
    p += kCkptDigestEntrySize;
  }
  for (const CheckpointSession& s : sessions) {
    ZSS_EXPECTS(s.h.size() == w && s.c.size() == w);
    put<std::uint64_t>(img, p, s.id);
    put<std::uint64_t>(img, p + 8, s.generation);
    put<std::uint64_t>(img, p + 16, s.steps);
    put<std::int64_t>(img, p + 24, s.arrival_us);
    std::memcpy(img.data() + p + 32, s.h.data(), w * sizeof(float));
    std::memcpy(img.data() + p + 32 + w * sizeof(float), s.c.data(),
                w * sizeof(float));
    p += session_entry;
  }
  put<std::uint32_t>(img, img.size() - 4, crc32c(0, img.data(), img.size() - 4));

  // tmp + sync + rename: the rename is the commit point. A crash before
  // it leaves the previous checkpoint + full journal authoritative (the
  // .tmp is deleted on the next open); a crash after it but before the
  // journal truncate just replays a suffix the new watermark skips.
  const std::string ckpt = cfg_.path + ".ckpt";
  const std::string tmp = ckpt + ".tmp";
  std::lock_guard<std::timed_mutex> lock(write_mu_);
  if (poisoned()) return false;
  auto out = env_.open(tmp, /*truncate_existing=*/true);
  if (out == nullptr) return false;
  if (out->write_at(0, img.data(), img.size()) != img.size() ||
      !out->sync()) {
    ++write_errors_;
    out.reset();
    env_.remove(tmp);
    return false;
  }
  out.reset();
  if (!env_.rename(tmp, ckpt)) {
    env_.remove(tmp);
    return false;
  }

  watermark_lsn_ = watermark;
  ++checkpoints_;
  if (!file_->truncate(kFileHeaderSize) || !file_->sync()) {
    // The checkpoint is durable and the watermark makes the stale
    // journal suffix harmless, but the handle misbehaved — degrade.
    ++write_errors_;
    disable();
    return true;
  }
  tail_ = kFileHeaderSize;
  dirty_ = false;
  return true;
}

void Journal::poison() {
  poisoned_.store(true, std::memory_order_release);
  // Drain: once the write lock can be taken, no writer is inside a
  // syscall and none can re-enter (the flag is re-checked under the
  // lock before any file op). Bounded so a writer wedged inside the
  // kernel cannot wedge the caller — the restart path — with it; in
  // that residual case one already-issued write can still land at the
  // stale tail, which the next recovery's CRC scan treats as a torn
  // tail rather than valid records.
  if (write_mu_.try_lock_for(std::chrono::milliseconds(250))) {
    write_mu_.unlock();
  }
}

}  // namespace zss::store
