#include "store/crc32c.h"

#include <array>

namespace zss::store {

namespace {

// Reflected-table construction for the Castagnoli polynomial. Built
// once at static-init time; 1 KB, byte-at-a-time — plenty for records
// of a few KB on the spill path, which is already disk-bound.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace zss::store
