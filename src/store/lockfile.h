// Spill-directory ownership lock.
//
// Two zss_serve instances pointed at the same --spill-dir would
// interleave appends into each other's segment files and destroy the
// valid-prefix invariant recovery depends on. A DirLock takes an
// exclusive, non-blocking flock(2) on "<dir>/LOCK" at startup; a
// second instance fails fast with a clear error instead of corrupting
// the tier. The kernel drops the lock when the process exits — even on
// a crash — so there is no stale-lock recovery dance: a lock held
// means a live owner, full stop.
#pragma once

#include <string>

namespace zss::store {

class DirLock {
 public:
  DirLock() = default;
  ~DirLock() { release(); }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Attempts to take the exclusive lock on `dir`/LOCK. False when the
  /// lock is held by another live process (or the file cannot be
  /// created); `error()` then says which.
  bool acquire(const std::string& dir);
  void release();

  bool held() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string error_;
};

}  // namespace zss::store
