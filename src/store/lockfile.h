// Spill-directory ownership lock.
//
// Two zss_serve instances pointed at the same --spill-dir would
// interleave appends into each other's segment files and destroy the
// valid-prefix invariant recovery depends on. A DirLock takes an
// exclusive, non-blocking flock(2) on "<dir>/LOCK" at startup; a
// second instance fails fast with a clear error instead of corrupting
// the tier. The kernel drops the lock when the process exits — even on
// a crash — so there is no stale-lock recovery dance: a lock held
// means a live owner, full stop. A LOCK file left behind by a crashed
// owner is therefore always lockable; acquire() reports that takeover
// (took_over_stale() + the dead owner's recorded pid) so startup can
// tell the operator recovery is expected, not surprising.
#pragma once

#include <string>

namespace zss::store {

class DirLock {
 public:
  DirLock() = default;
  ~DirLock() { release(); }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Attempts to take the exclusive lock on `dir`/LOCK. False when the
  /// lock is held by another live process (or the file cannot be
  /// created); `error()` then says which.
  bool acquire(const std::string& dir);
  void release();

  bool held() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  /// True when acquire() succeeded over a LOCK file that already
  /// existed — i.e. the previous owner exited without release() (a
  /// crash; clean exits leave the file too, but either way the lock
  /// was free and the directory is ours). previous_pid() is the pid
  /// the dead owner recorded, or -1 if unreadable.
  bool took_over_stale() const { return took_over_stale_; }
  long previous_pid() const { return previous_pid_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string error_;
  bool took_over_stale_ = false;
  long previous_pid_ = -1;
};

}  // namespace zss::store
