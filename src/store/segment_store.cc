#include "store/segment_store.h"

#include <chrono>
#include <cmath>
#include <cstring>

#include "sparse/encoding.h"
#include "store/crc32c.h"

namespace zss::store {

namespace {

constexpr std::uint8_t kMagic[8] = {'Z', 'S', 'S', 'S', 'E', 'G', '1', '\0'};
constexpr std::uint64_t kFileHeaderSize = 16;
constexpr std::uint64_t kRecordHeaderSize = 48;
constexpr std::uint32_t kFlagEncoded = 1u << 0;

// Record header byte layout (after the u32 crc at offset 0):
//   [4]  u32 flags   [8]  u64 id      [16] u64 generation
//   [24] u64 steps   [32] i64 arrival [40] u32 payload_len
//   [44] u32 reserved
template <typename T>
void put(std::vector<std::uint8_t>& buf, std::size_t off, T v) {
  std::memcpy(buf.data() + off, &v, sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

bool has_negative_zero(const float* v, num::Index n) {
  for (num::Index i = 0; i < n; ++i) {
    if (v[i] == 0.0f && std::signbit(v[i])) return true;
  }
  return false;
}

}  // namespace

SegmentStore::SegmentStore(Env& env, StoreConfig cfg, num::Index hidden_dim)
    : env_(env), cfg_(std::move(cfg)), dh_(hidden_dim) {
  ZSS_EXPECTS(hidden_dim >= 1);
  ZSS_EXPECTS(!cfg_.path.empty());
  ZSS_EXPECTS(cfg_.max_write_attempts >= 1);
  // A leftover .tmp is an incomplete compaction that never reached its
  // rename commit point: the base file is authoritative, the tmp is
  // garbage.
  const std::string tmp = cfg_.path + ".tmp";
  if (env_.exists(tmp)) env_.remove(tmp);
  file_ = env_.open(cfg_.path, /*truncate_existing=*/false);
  if (file_ == nullptr) return;  // degraded from birth: RAM-only
  recover();
}

bool SegmentStore::write_file_header() {
  std::vector<std::uint8_t> hdr(kFileHeaderSize, 0);
  std::memcpy(hdr.data(), kMagic, sizeof(kMagic));
  put<std::uint32_t>(hdr, 8, static_cast<std::uint32_t>(dh_));
  put<std::uint32_t>(hdr, 12, crc32c(0, hdr.data(), 12));
  if (file_->write_at(0, hdr.data(), hdr.size()) != hdr.size()) return false;
  if (!file_->truncate(kFileHeaderSize)) return false;
  if (!file_->sync()) return false;
  tail_ = kFileHeaderSize;
  return true;
}

void SegmentStore::recover() {
  index_.clear();
  dead_bytes_ = 0;

  const std::uint64_t fsize = file_->size();
  std::vector<std::uint8_t> hdr(kFileHeaderSize);
  const bool header_ok =
      fsize >= kFileHeaderSize &&
      file_->read_at(0, hdr.data(), hdr.size()) == hdr.size() &&
      std::memcmp(hdr.data(), kMagic, sizeof(kMagic)) == 0 &&
      get<std::uint32_t>(hdr.data() + 8) == static_cast<std::uint32_t>(dh_) &&
      get<std::uint32_t>(hdr.data() + 12) == crc32c(0, hdr.data(), 12);
  if (!header_ok) {
    // Empty file, a crash inside the very first header write, or a
    // different hidden_dim: nothing here can be served, start fresh.
    if (!write_file_header()) {
      file_.reset();  // unusable medium
    }
    return;
  }

  // Scan forward, record by record. The append path syncs before
  // acknowledging, so the committed records form a prefix; the first
  // short read or CRC mismatch marks the torn tail, which is cut off.
  const std::uint64_t dense_payload =
      static_cast<std::uint64_t>(dh_) * 2 * sizeof(float);
  const std::uint64_t max_payload = dense_payload + 4 +
                                    static_cast<std::uint64_t>(dh_) * 2;
  std::uint64_t off = kFileHeaderSize;
  std::vector<std::uint8_t> rec;
  while (off + kRecordHeaderSize <= fsize) {
    rec.resize(kRecordHeaderSize);
    if (file_->read_at(off, rec.data(), kRecordHeaderSize) !=
        kRecordHeaderSize) {
      break;
    }
    const auto payload_len = get<std::uint32_t>(rec.data() + 40);
    if (payload_len > max_payload ||
        off + kRecordHeaderSize + payload_len > fsize) {
      break;  // garbage length or payload runs past EOF: torn
    }
    rec.resize(kRecordHeaderSize + payload_len);
    if (file_->read_at(off + kRecordHeaderSize, rec.data() + kRecordHeaderSize,
                       payload_len) != payload_len) {
      break;
    }
    const auto stored_crc = get<std::uint32_t>(rec.data());
    if (stored_crc != crc32c(0, rec.data() + 4, rec.size() - 4)) break;

    IndexEntry e;
    e.offset = off;
    e.length = static_cast<std::uint32_t>(rec.size());
    e.meta.generation = get<std::uint64_t>(rec.data() + 16);
    e.meta.steps = get<std::uint64_t>(rec.data() + 24);
    e.meta.arrival_us = get<std::int64_t>(rec.data() + 32);
    const auto id = get<std::uint64_t>(rec.data() + 8);
    auto [it, inserted] = index_.try_emplace(id, e);
    if (!inserted) {
      mark_dead(it->second);  // superseded by this later record
      it->second = e;
    }
    ++recovered_records_;
    off += rec.size();
  }

  if (off < fsize) {
    truncated_tail_bytes_ += fsize - off;
    if (!file_->truncate(off) || !file_->sync()) {
      file_.reset();
      index_.clear();
      return;
    }
  }
  tail_ = off;
}

void SegmentStore::serialize_record(serve_id_t id, const RecordMeta& meta,
                                    const num::Matrix& h, const num::Matrix& c,
                                    std::vector<std::uint8_t>& buf) {
  const auto dh = static_cast<std::size_t>(dh_);
  const std::size_t dense_payload = dh * 2 * sizeof(float);

  std::uint32_t flags = 0;
  std::size_t payload_len = dense_payload;
  sparse::EncodedState<float> enc;
  if (cfg_.encoded) {
    // The offset encoding drops every value == 0.0f, which would turn
    // a -0.0f into +0.0f on restore — a bit-exactness loss. Such
    // records (and records the encoding would not shrink) go dense.
    if (has_negative_zero(h.data(), dh_)) {
      ++spill_fallback_dense_;
    } else {
      enc = sparse::encode(std::span<const float>(h.data(), dh),
                           sparse::EncoderConfig{});
      const std::size_t kept = static_cast<std::size_t>(enc.kept_positions());
      const std::size_t enc_payload =
          4 + kept * (sizeof(std::uint16_t) + sizeof(float)) +
          dh * sizeof(float);
      if (enc_payload < dense_payload) {
        flags |= kFlagEncoded;
        payload_len = enc_payload;
      } else {
        ++spill_fallback_dense_;
      }
    }
  }

  buf.assign(kRecordHeaderSize + payload_len, 0);
  put<std::uint32_t>(buf, 4, flags);
  put<std::uint64_t>(buf, 8, id);
  put<std::uint64_t>(buf, 16, meta.generation);
  put<std::uint64_t>(buf, 24, meta.steps);
  put<std::int64_t>(buf, 32, meta.arrival_us);
  put<std::uint32_t>(buf, 40, static_cast<std::uint32_t>(payload_len));

  std::size_t p = kRecordHeaderSize;
  if (flags & kFlagEncoded) {
    const std::size_t kept = static_cast<std::size_t>(enc.kept_positions());
    put<std::uint32_t>(buf, p, static_cast<std::uint32_t>(kept));
    p += 4;
    for (std::size_t i = 0; i < kept; ++i) {
      put<std::uint16_t>(buf, p,
                         static_cast<std::uint16_t>(enc.entries[i].offset));
      p += 2;
    }
    std::memcpy(buf.data() + p, enc.values.data(), kept * sizeof(float));
    p += kept * sizeof(float);
  } else {
    std::memcpy(buf.data() + p, h.data(), dh * sizeof(float));
    p += dh * sizeof(float);
  }
  std::memcpy(buf.data() + p, c.data(), dh * sizeof(float));
  p += dh * sizeof(float);
  ZSS_ASSERT(p == buf.size());

  put<std::uint32_t>(buf, 0, crc32c(0, buf.data() + 4, buf.size() - 4));
}

bool SegmentStore::spill(serve_id_t id, const RecordMeta& meta,
                         const num::Matrix& h, const num::Matrix& c) {
  if (!spilling_enabled()) return false;
  ZSS_EXPECTS(h.cols() == dh_ && c.cols() == dh_);
  serialize_record(id, meta, h, c, scratch_);

  // Bounded retry, each attempt from the same tail offset so a torn
  // prefix is simply overwritten. A record is committed only once both
  // the write and the sync succeeded; anything less leaves the file's
  // valid prefix exactly where it was (recovery cuts the debris). The
  // lock scope ends before maybe_compact(), which takes it again.
  bool committed = false;
  {
    std::lock_guard<std::timed_mutex> lock(write_mu_);
    if (poisoned()) return false;
    for (int attempt = 0; attempt < cfg_.max_write_attempts; ++attempt) {
      if (file_->write_at(tail_, scratch_.data(), scratch_.size()) ==
              scratch_.size() &&
          file_->sync()) {
        committed = true;
        break;
      }
      ++write_errors_;
    }
    if (!committed) {
      // Degrade: stop spilling, keep serving RAM-only. Best-effort tail
      // cleanup; if even that fails, recovery handles the debris later.
      file_->truncate(tail_);
      disable();
      return false;
    }
  }

  IndexEntry e;
  e.offset = tail_;
  e.length = static_cast<std::uint32_t>(scratch_.size());
  e.meta = meta;
  auto [it, inserted] = index_.try_emplace(id, e);
  if (!inserted) {
    mark_dead(it->second);
    it->second = e;
  }
  tail_ += scratch_.size();
  ++spilled_;
  maybe_compact();
  return true;
}

const RecordMeta* SegmentStore::find(serve_id_t id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &it->second.meta;
}

RestoreResult SegmentStore::restore_into(serve_id_t id, RecordMeta* meta,
                                         num::Matrix& h, num::Matrix& c) {
  const auto it = index_.find(id);
  if (it == index_.end() || !ok()) return RestoreResult::kMissing;
  const IndexEntry e = it->second;

  // Every restore re-verifies the CRC: the index proves a record was
  // committed once, not that the medium preserved it since.
  scratch_.resize(e.length);
  const bool intact =
      file_->read_at(e.offset, scratch_.data(), e.length) == e.length &&
      get<std::uint32_t>(scratch_.data()) ==
          crc32c(0, scratch_.data() + 4, scratch_.size() - 4);
  // Consumed either way: on success the RAM copy becomes authoritative
  // (a later spill writes a fresh record; keeping this one would risk
  // restoring stale state if that spill fails), on corruption the
  // record is useless.
  mark_dead(e);
  index_.erase(it);
  if (!intact) {
    ++restore_corrupt_;
    return RestoreResult::kCorrupt;
  }

  const auto dh = static_cast<std::size_t>(dh_);
  const auto flags = get<std::uint32_t>(scratch_.data() + 4);
  if (meta != nullptr) *meta = e.meta;
  h.resize(1, dh_);
  c.resize(1, dh_);
  const std::uint8_t* p = scratch_.data() + kRecordHeaderSize;
  if (flags & kFlagEncoded) {
    const auto kept = get<std::uint32_t>(p);
    p += 4;
    sparse::EncodedState<float> enc;
    enc.batch = 1;
    enc.dense_size = dh_;
    enc.entries.resize(kept);
    enc.values.resize(kept);
    for (std::uint32_t i = 0; i < kept; ++i) {
      enc.entries[i].offset = get<std::uint16_t>(p + i * 2);
    }
    p += kept * 2;
    std::memcpy(enc.values.data(), p, kept * sizeof(float));
    p += kept * sizeof(float);
    const num::Matrix dense = sparse::decode(enc);
    std::memcpy(h.data(), dense.data(), dh * sizeof(float));
  } else {
    std::memcpy(h.data(), p, dh * sizeof(float));
    p += dh * sizeof(float);
  }
  std::memcpy(c.data(), p, dh * sizeof(float));
  ++restored_;
  return RestoreResult::kOk;
}

void SegmentStore::erase(serve_id_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  mark_dead(it->second);
  index_.erase(it);
}

void SegmentStore::maybe_compact() {
  if (tail_ < cfg_.compact_min_bytes) return;
  const std::uint64_t payload = tail_ - kFileHeaderSize;
  if (payload > 0 &&
      static_cast<double>(dead_bytes_) >
          cfg_.compact_dead_ratio * static_cast<double>(payload)) {
    compact();
  }
}

bool SegmentStore::compact(std::int64_t expire_before_us) {
  if (!ok()) return false;
  std::lock_guard<std::timed_mutex> lock(write_mu_);
  if (poisoned()) return false;
  const std::string tmp = cfg_.path + ".tmp";
  auto out = env_.open(tmp, /*truncate_existing=*/true);
  if (out == nullptr) return false;

  // Copy the live records (raw bytes — CRCs stay valid) behind a fresh
  // header, drop the expired ones, then commit with one atomic rename.
  std::vector<std::uint8_t> hdr(kFileHeaderSize, 0);
  std::memcpy(hdr.data(), kMagic, sizeof(kMagic));
  put<std::uint32_t>(hdr, 8, static_cast<std::uint32_t>(dh_));
  put<std::uint32_t>(hdr, 12, crc32c(0, hdr.data(), 12));
  if (out->write_at(0, hdr.data(), hdr.size()) != hdr.size()) return false;

  std::unordered_map<serve_id_t, IndexEntry> new_index;
  new_index.reserve(index_.size());
  std::uint64_t new_tail = kFileHeaderSize;
  std::vector<std::uint8_t> rec;
  for (const auto& [id, e] : index_) {
    if (e.meta.arrival_us < expire_before_us) continue;
    rec.resize(e.length);
    if (file_->read_at(e.offset, rec.data(), e.length) != e.length) {
      return false;
    }
    if (out->write_at(new_tail, rec.data(), rec.size()) != rec.size()) {
      return false;
    }
    IndexEntry ne = e;
    ne.offset = new_tail;
    new_index.emplace(id, ne);
    new_tail += rec.size();
  }
  if (!out->sync()) return false;
  out.reset();

  // The commit point. Before it the old file is authoritative (a crash
  // leaves the .tmp for the next open to delete); after it the new one
  // is complete and synced.
  if (!env_.rename(tmp, cfg_.path)) return false;
  auto reopened = env_.open(cfg_.path, /*truncate_existing=*/false);
  if (reopened == nullptr) {
    // The compacted file is durable but we lost our handle; degrade.
    file_.reset();
    index_.clear();
    return false;
  }
  file_ = std::move(reopened);
  index_ = std::move(new_index);
  tail_ = new_tail;
  dead_bytes_ = 0;
  ++compactions_;
  return true;
}

void SegmentStore::poison() {
  poisoned_.store(true, std::memory_order_release);
  // Same drain contract as Journal::poison(): after this returns no
  // new write can start, and any in-flight one has finished unless it
  // is wedged inside the kernel (bounded wait, so a hung syscall
  // cannot wedge the restart path).
  if (write_mu_.try_lock_for(std::chrono::milliseconds(250))) {
    write_mu_.unlock();
  }
}

}  // namespace zss::store
