// Write-ahead session journal — the durability layer that turns the
// durable *tier* (store/segment_store.h) into a durable *server*.
//
// PR 6 made evicted sessions crash-safe; a kill -9 still vaporized
// every RAM-resident session. A Journal logs every committed session
// state transition of one shard — create, post-batch h/c update, TTL
// reset, evict-to-spill, erase — as CRC32C-framed records appended to
// "<path>", so a restarted server replays the valid prefix and
// reconstructs the shard's full session population (and its per-session
// digest table) exactly as the crashed instance last committed it.
//
// One journal belongs to one shard (the shared-nothing discipline of
// SessionStore and SegmentStore carries through), and reuses the same
// injectable Env/File I/O so the fault matrix drives every byte offset
// deterministically.
//
// On-disk format (host little-endian; docs/store.md "Session journal"):
//
//   file header   16 B  magic "ZSSJNL1\0" | u32 state_width | u32 crc32c
//   record        72 B header + payload
//     u32 crc          CRC32C over header bytes [4..72) + payload
//     u32 kind         RecordKind below
//     u64 lsn          strictly increasing, never reused after truncation
//     u64 session id
//     u64 generation
//     u64 steps
//     i64 arrival_us
//     u64 digest_steps rolling per-session digest after this update
//     u64 digest
//     u32 payload_len  0, or 2 * state_width * 4 for kUpdate
//     u32 reserved     zero
//   payload (kUpdate only)
//     state_width f32 of packed h, then state_width f32 of packed c
//
// Checkpoint + truncate compaction: once the journal exceeds
// JournalConfig::checkpoint_bytes the owner serializes the shard's
// entire live state (sessions in LRU order plus the full digest table)
// into "<path>.ckpt" via the tmp+sync+rename pattern, then truncates
// the journal back to its header. The checkpoint stores the LSN of the
// last record it covers; recovery replays only records with a larger
// LSN. That watermark is what makes the checkpoint/truncate window
// crash-safe even though records carry absolute (non-idempotent with
// respect to ordering) state: a crash after the rename but before the
// truncate replays an already-covered suffix whose every record is
// skipped by LSN.
//
// Invariants (tests/store/journal_test.cc, every-byte-offset matrix):
//  * Valid prefix: a record is committed once append + commit() (sync)
//    returned true. Reopening after a crash at ANY byte offset of the
//    write path recovers every committed record and truncates the torn
//    tail.
//  * A corrupt checkpoint (CRC mismatch, torn write) is discarded whole
//    — recovery degrades to replaying the journal alone and counts it
//    in checkpoint_corrupt(); never an abort, never a partial apply.
//  * Write errors: bounded retries, then the journal disables itself
//    (enabled() == false) and the shard keeps serving undurably —
//    surfaced in stats, not thrown. Exactly SegmentStore's policy.
//  * A leftover "<path>.tmp" / "<path>.ckpt.tmp" is an incomplete
//    checkpoint that never reached its rename; it is deleted on open
//    (orphans_removed() counts them for the startup diagnostics).
//  * A journal (or checkpoint) whose header carries a different
//    state_width is a configuration error — the same spill dir opened
//    under a different model — not corruption. Opening REFUSES
//    (ok() == false, open_error() explains) and leaves every byte on
//    disk untouched, instead of truncating committed history.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "num/types.h"
#include "store/io.h"

namespace zss::store {

/// Group-commit fsync policy. kBatch syncs once per commit() call (the
/// shard calls it at every batch boundary, before responses are
/// delivered — so every client-visible response is durable). kNone
/// never syncs: the OS decides, and the crash-consistency guarantee
/// weakens to "whatever the kernel flushed" (still torn-tail-safe).
enum class JournalSync { kBatch, kNone };

struct JournalConfig {
  /// Journal file path; the checkpoint lives at "<path>.ckpt" and both
  /// use "<...>.tmp" staging beside them.
  std::string path;
  JournalSync sync = JournalSync::kBatch;
  /// Write attempts per append/commit before the journal disables
  /// itself.
  int max_write_attempts = 3;
  /// Journal bytes past which wants_checkpoint() turns true. The owner
  /// checkpoints at a batch boundary, never mid-batch.
  std::uint64_t checkpoint_bytes = std::uint64_t{4} << 20;
};

/// One logged session transition, also the unit recovery replays.
enum class JournalRecordKind : std::uint32_t {
  kCreate = 1,    // session born fresh (zero state) at arrival_us
  kUpdate = 2,    // post-batch absolute state: h/c payload + digest
  kTtlReset = 3,  // resident session restarted from zero, new generation
  kEvict = 4,     // evicted to the spill tier (segment record exists)
  kErase = 5,     // gone entirely (sweep, or eviction without spill)
};

/// A recovered record, handed to the replay visitor in LSN order.
/// `h`/`c` point into the journal's scratch buffer (state_width floats
/// each) and are valid only during the visit; null for payload-less
/// kinds.
struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kCreate;
  std::uint64_t lsn = 0;
  std::uint64_t id = 0;
  std::uint64_t generation = 0;
  std::uint64_t steps = 0;
  std::int64_t arrival_us = 0;
  std::uint64_t digest_steps = 0;
  std::uint64_t digest = 0;
  const float* h = nullptr;
  const float* c = nullptr;
};

/// One session serialized into (or out of) a checkpoint. Checkpoints
/// are rare and whole-shard, so plain owning vectors are fine here —
/// the append hot path never touches this type.
struct CheckpointSession {
  std::uint64_t id = 0;
  std::uint64_t generation = 0;
  std::uint64_t steps = 0;
  std::int64_t arrival_us = 0;
  std::vector<float> h;  // state_width floats
  std::vector<float> c;
};

/// One digest-table entry serialized into (or out of) a checkpoint.
struct CheckpointDigest {
  std::uint64_t id = 0;
  std::uint64_t steps = 0;
  std::uint64_t digest = 0;
};

class Journal {
 public:
  /// Opens (or creates) the journal at cfg.path via `env` and runs
  /// recovery: orphaned .tmp files removed, the checkpoint loaded and
  /// CRC-verified, the journal's valid prefix scanned and the torn
  /// tail truncated. `env` must outlive the journal. Never throws;
  /// ok() reports whether the journal is usable.
  Journal(Env& env, JournalConfig cfg, num::Index state_width);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Non-empty when the constructor refused to open the file rather
  /// than risk destroying committed history (state_width mismatch, or
  /// header bit rot ahead of live records). ok() is false; the file is
  /// untouched. Plain open failures (unreachable path) leave this
  /// empty — they degrade to undurable serving as before.
  const std::string& open_error() const { return open_error_; }

  /// False once the write-error policy has tripped (or open failed);
  /// the owner keeps serving without durability.
  bool enabled() const { return ok() && !disabled_ && !poisoned(); }

  /// Permanently fences this journal off its file: every later
  /// append/commit/checkpoint is a refused no-op. The pool calls this
  /// on a retired journal before reopening the same path for a rebuilt
  /// shard, so a wedged worker thread that resumes with the stale
  /// handle can never interleave writes with the replacement journal
  /// (two handles, divergent tails — WAL corruption). Waits a bounded
  /// moment for an in-flight write to drain; a write wedged inside the
  /// kernel past that is still fenced the instant it returns (the flag
  /// is re-checked under the write lock before every syscall batch).
  void poison();
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Append one transition. `h`/`c` (state_width floats each) are
  /// required for kUpdate and ignored otherwise. The record is staged
  /// in the file but NOT durable until commit() — callers must not
  /// deliver a response that depends on it before commit() returns
  /// true. False = the journal just disabled itself.
  bool append(JournalRecordKind kind, std::uint64_t id,
              std::uint64_t generation, std::uint64_t steps,
              std::int64_t arrival_us, std::uint64_t digest_steps,
              std::uint64_t digest, const float* h = nullptr,
              const float* c = nullptr);

  /// Group-commit barrier: syncs everything appended since the last
  /// commit (kBatch) or is a no-op (kNone). True when every append
  /// since the last commit is durable.
  bool commit();

  /// True once the journal grew past checkpoint_bytes; the owner
  /// should checkpoint() at the next batch boundary.
  bool wants_checkpoint() const {
    return enabled() && tail_ > cfg_.checkpoint_bytes;
  }

  /// Serializes the shard's entire live state to "<path>.ckpt"
  /// (tmp+sync+rename) with the current LSN watermark, then truncates
  /// the journal to its header. `sessions` must be in LRU order, least
  /// recently used first, so recovery can rebuild the exact LRU list.
  /// False on I/O failure (the previous checkpoint and journal stay
  /// authoritative).
  bool checkpoint(const std::vector<CheckpointSession>& sessions,
                  const std::vector<CheckpointDigest>& digests);

  /// Recovery output, populated at construction: the checkpoint's
  /// sessions/digests (empty when none), then replay() for the journal
  /// suffix. recover_into-style consumers should take these, apply the
  /// replay visitor, then clear_recovered() to drop the memory.
  const std::vector<CheckpointSession>& checkpoint_sessions() const {
    return ckpt_sessions_;
  }
  const std::vector<CheckpointDigest>& checkpoint_digests() const {
    return ckpt_digests_;
  }

  /// Streams the recovered journal records (LSN > checkpoint watermark,
  /// valid prefix only) through `fn` in file order == LSN order.
  void replay(const std::function<void(const JournalRecord&)>& fn);

  /// Drops the recovery buffers once the owner has applied them.
  void clear_recovered();

  num::Index state_width() const { return width_; }
  std::uint64_t file_bytes() const { return tail_; }
  /// Newest arrival stamp across the checkpoint and every recovered
  /// record — the floor a restarted server must stamp new arrivals
  /// above to keep per-shard arrivals monotone.
  std::int64_t recovered_max_arrival_us() const { return max_arrival_us_; }

  /// Lifetime counters (monotone).
  std::uint64_t appended() const { return appended_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t write_errors() const { return write_errors_; }
  std::uint64_t checkpoints() const { return checkpoints_; }
  std::uint64_t recovered_records() const { return recovered_records_; }
  std::uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }
  std::uint64_t checkpoint_corrupt() const { return checkpoint_corrupt_; }
  /// Orphaned .tmp files removed on open — a crashed instance's debris,
  /// surfaced so startup can tell the operator recovery ran.
  std::uint64_t orphans_removed() const { return orphans_removed_; }

 private:
  bool write_file_header();
  void recover();
  bool load_checkpoint();
  void disable() { disabled_ = true; }

  Env& env_;
  JournalConfig cfg_;
  num::Index width_;
  std::unique_ptr<File> file_;
  std::string open_error_;
  // Fencing for rebuild_shard: the owning shard thread is the only
  // writer, so the lock is uncontended in steady state; poison() takes
  // it once to drain an in-flight write. Timed so a write wedged
  // inside the kernel cannot wedge the restart path with it.
  std::timed_mutex write_mu_;
  std::atomic<bool> poisoned_{false};
  std::uint64_t tail_ = 0;     // append offset == valid-prefix length
  std::uint64_t next_lsn_ = 1;
  std::uint64_t watermark_lsn_ = 0;  // checkpoint covers LSNs <= this
  bool disabled_ = false;
  bool dirty_ = false;  // appends since the last successful commit
  std::vector<std::uint8_t> scratch_;
  std::vector<float> replay_state_;  // h/c staging for the replay visitor

  std::vector<CheckpointSession> ckpt_sessions_;
  std::vector<CheckpointDigest> ckpt_digests_;
  std::int64_t max_arrival_us_ = 0;

  std::uint64_t appended_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t write_errors_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t recovered_records_ = 0;
  std::uint64_t truncated_tail_bytes_ = 0;
  std::uint64_t checkpoint_corrupt_ = 0;
  std::uint64_t orphans_removed_ = 0;
};

}  // namespace zss::store
