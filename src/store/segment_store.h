// Durable spill tier — an append-only segment file of checksummed
// session-state records plus an in-memory index.
//
// The serving layer's LRU cap used to be a *forget* policy: evicting a
// session destroyed its h/c state. With a SegmentStore attached
// (serve/session.h::SessionStore::set_spill) it becomes a *tiering*
// policy: the victim's state is appended here on eviction and read
// back, bit-for-bit, when the session returns. One store belongs to
// one shard (shared-nothing, single-threaded), mirroring the
// one-store-one-shard discipline of SessionStore itself.
//
// On-disk format (host little-endian; docs/store.md):
//
//   file header   16 B  magic "ZSSSEG1\0" | u32 dh | u32 crc32c
//   record        48 B header + payload
//     u32 crc        CRC32C over header bytes [4..48) + payload
//     u32 flags      bit0 = payload is offset-encoded
//     u64 session id
//     u64 generation
//     u64 steps
//     i64 arrival_us arrival stamp of the evicted session's last request
//     u32 payload_len
//     u32 reserved (zero)
//   payload
//     dense:   dh f32 of h, then dh f32 of c
//     encoded: u32 kept | kept u16 offsets | kept f32 h values |
//              dh f32 of c   (sparse::encode of h, batch of one)
//
// Invariants the fault-injection matrix enforces
// (tests/store/fault_injection_test.cc):
//
//  * Valid prefix: a record is *committed* once spill() returned true
//    (full write + successful sync). Reopening after a crash at ANY
//    byte offset of the write path recovers every committed record and
//    truncates the torn tail — nothing committed is lost, nothing
//    torn is served.
//  * Restores verify the CRC; a corrupt record degrades to "record
//    absent" (the caller falls back to fresh zero state — the pre-spill
//    behavior) and bumps restore_corrupt(). Never an abort.
//  * Write errors: each spill retries a bounded number of times, then
//    the store disables itself (spilling_enabled() == false) and the
//    shard keeps serving RAM-only. Surfaced in stats, not thrown.
//  * Compaction rewrites live records to "<path>.tmp", syncs, then
//    commits with one atomic rename. A crash at any point leaves
//    either the old file or the complete new one; a leftover .tmp is
//    deleted on open (the base file is always authoritative).
//
// Restored state must be bitwise-identical to never-evicted state.
// The one hazard is the offset encoding, which drops values equal to
// 0.0f — including -0.0f, which would come back as +0.0f. A record
// whose h contains a negative zero therefore falls back to the dense
// payload (spill_fallback_dense() counts these), keeping the fp32
// round-trip exact in all cases.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "num/matrix.h"
#include "num/types.h"
#include "store/io.h"

namespace zss::store {

struct StoreConfig {
  /// Segment file path (compaction uses "<path>.tmp" beside it).
  std::string path;
  /// Spill h through the paper's offset encoding (sparse::encode) when
  /// that is smaller than dense — pruned state is ~90% zeros, so the
  /// spilled form is ~10% of the dense bytes (PAPER.md). Records fall
  /// back to dense when encoding would lose bits (-0.0) or grow.
  bool encoded = false;
  /// Write attempts per spill before the store disables itself.
  int max_write_attempts = 3;
  /// Compact when dead payload bytes exceed this fraction of the file
  /// and the file is at least compact_min_bytes.
  double compact_dead_ratio = 0.5;
  std::uint64_t compact_min_bytes = 64 * 1024;
};

/// Metadata of a spilled record — what the tiering policy needs to
/// decide (TTL check against the new arrival) before paying for the
/// payload read.
struct RecordMeta {
  std::uint64_t generation = 0;
  std::uint64_t steps = 0;
  std::int64_t arrival_us = 0;
};

enum class RestoreResult { kOk, kMissing, kCorrupt };

class SegmentStore {
 public:
  /// Session ids are serve::SessionId; spelled as the raw integer here
  /// so store/ stays a leaf the serve layer depends on, not a cycle.
  using serve_id_t = std::uint64_t;

  /// Opens (or creates) the segment at cfg.path via `env` and runs
  /// recovery: leftover .tmp removed, records scanned, torn tail
  /// truncated, index rebuilt latest-record-wins. `env` must outlive
  /// the store. Never throws; ok() reports whether the store is
  /// usable (if not, it behaves as permanently disabled).
  SegmentStore(Env& env, StoreConfig cfg, num::Index hidden_dim);

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// False once the write-error policy has tripped (or open failed);
  /// the owner keeps serving RAM-only.
  bool spilling_enabled() const { return ok() && !disabled_ && !poisoned(); }

  /// Permanently fences this store off its file: later spills and
  /// compactions are refused no-ops (a compaction's rename would
  /// otherwise clobber the file a rebuilt shard has reopened at the
  /// same path — serve/pool.cc::rebuild_shard). Same contract as
  /// store::Journal::poison(): bounded drain of an in-flight write,
  /// and the flag is re-checked under the write lock.
  void poison();
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Appends a record for `id` (superseding any earlier one). True
  /// once the record is durable (written + synced). False = all
  /// attempts failed; the store is now disabled and the state is lost
  /// to the disk tier (the RAM copy the caller is about to drop was
  /// the last one — exactly the pre-spill eviction semantics).
  bool spill(serve_id_t id, const RecordMeta& meta, const num::Matrix& h,
             const num::Matrix& c);

  /// Metadata peek without payload I/O. Null when no record exists.
  const RecordMeta* find(serve_id_t id) const;

  /// Reads the record back into h/c (resized to 1 x dh). kOk: bits are
  /// exactly what spill() was given, record consumed (index entry
  /// dropped — the RAM copy is authoritative again). kCorrupt: CRC or
  /// read failure; record dropped, restore_corrupt() bumped, h/c
  /// untouched. kMissing: no record.
  RestoreResult restore_into(serve_id_t id, RecordMeta* meta, num::Matrix& h,
                             num::Matrix& c);

  /// Drops the record without reading it (e.g. its TTL has expired —
  /// it could never be restored).
  void erase(serve_id_t id);

  /// Rewrites live records to a fresh file and atomically swaps it in.
  /// Records whose arrival stamp is older than `expire_before_us` are
  /// dropped (pass INT64_MIN to keep everything). Crash-safe at every
  /// point; false on I/O failure (old file stays authoritative).
  bool compact(std::int64_t expire_before_us = INT64_MIN);

  num::Index hidden_dim() const { return dh_; }
  std::uint64_t live_records() const { return index_.size(); }
  std::uint64_t file_bytes() const { return tail_; }
  std::uint64_t dead_bytes() const { return dead_bytes_; }

  /// Lifetime counters (monotone).
  std::uint64_t spilled() const { return spilled_; }
  std::uint64_t restored() const { return restored_; }
  std::uint64_t restore_corrupt() const { return restore_corrupt_; }
  std::uint64_t write_errors() const { return write_errors_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t spill_fallback_dense() const { return spill_fallback_dense_; }
  std::uint64_t recovered_records() const { return recovered_records_; }
  std::uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;  // record start (header) in the file
    std::uint32_t length = 0;  // header + payload bytes
    RecordMeta meta;
  };

  bool write_file_header();
  void recover();
  void mark_dead(const IndexEntry& e) { dead_bytes_ += e.length; }
  void disable() { disabled_ = true; }
  void serialize_record(serve_id_t id, const RecordMeta& meta,
                        const num::Matrix& h, const num::Matrix& c,
                        std::vector<std::uint8_t>& buf);
  void maybe_compact();

  Env& env_;
  StoreConfig cfg_;
  num::Index dh_;
  std::unique_ptr<File> file_;
  std::uint64_t tail_ = 0;  // append offset == valid-prefix length
  bool disabled_ = false;
  // Fencing for rebuild_shard; uncontended in steady state (one shard
  // thread writes), taken once by poison() to drain an in-flight write.
  std::timed_mutex write_mu_;
  std::atomic<bool> poisoned_{false};
  std::unordered_map<serve_id_t, IndexEntry> index_;
  std::uint64_t dead_bytes_ = 0;
  std::vector<std::uint8_t> scratch_;

  std::uint64_t spilled_ = 0;
  std::uint64_t restored_ = 0;
  std::uint64_t restore_corrupt_ = 0;
  std::uint64_t write_errors_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t spill_fallback_dense_ = 0;
  std::uint64_t recovered_records_ = 0;
  std::uint64_t truncated_tail_bytes_ = 0;
};

}  // namespace zss::store
