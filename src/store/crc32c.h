// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding every segment record (store/format.h). Chosen over CRC32
// (zlib polynomial) for its better burst-error detection and because
// it is the de-facto storage checksum (ext4, iSCSI, LevelDB); software
// table-driven here, no hardware dependency.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zss::store {

/// Extends `crc` (a previous crc32c() result, or 0 to start) over
/// `data[0..n)`. Composable: crc32c(crc32c(0, a, la), b, lb) equals
/// crc32c(0, a+b, la+lb).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n);

}  // namespace zss::store
