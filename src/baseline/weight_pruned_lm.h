// Weight-pruned LSTM language model — the full ESE-style baseline
// pipeline (prune-and-retrain) packaged next to the paper's state-pruned
// models so the two sparsity philosophies can be compared end to end on
// identical tasks (bench/ablation_weight_vs_state).
#pragma once

#include <vector>

#include "baseline/weight_pruner.h"
#include "core/lm_model.h"

namespace zss::baseline {

class WeightPrunedLm {
 public:
  /// `config.pruner` must be none: this baseline keeps states dense and
  /// zeroes weights instead.
  explicit WeightPrunedLm(const core::LmConfig& config);

  /// One BPTT window; masked weights are re-zeroed after the step.
  double train_window(const data::LmBatch& batch, nn::Optimizer& opt,
                      float clip_norm);

  /// Magnitude-prunes the recurrent and input weight matrices to the
  /// given sparsity and installs retraining masks (Han's recipe).
  void prune_weights(double sparsity);

  core::LmEval evaluate(std::span<const num::Index> stream, num::Index batch,
                        num::Index seq_len) {
    return model_.evaluate(stream, batch, seq_len);
  }

  /// Measured sparsity of Wh / Wx after pruning.
  double recurrent_weight_sparsity() const;
  double input_weight_sparsity() const;

  bool pruned() const { return pruned_; }

  core::PrunedLstmLm& model() { return model_; }
  const nn::LstmCell& cell() const { return model_.cell(); }
  nn::LstmCell& cell() { return model_.cell(); }

 private:
  core::PrunedLstmLm model_;
  bool pruned_ = false;
  WeightMask wh_mask_;
  WeightMask wx_mask_;
};

}  // namespace zss::baseline
