#include "baseline/weight_pruned_lm.h"

namespace zss::baseline {

WeightPrunedLm::WeightPrunedLm(const core::LmConfig& config)
    : model_(config) {
  ZSS_EXPECTS(config.pruner.mode == core::PruneMode::kNone);
}

double WeightPrunedLm::train_window(const data::LmBatch& batch,
                                    nn::Optimizer& opt, float clip_norm) {
  const double nll = model_.train_window(batch, opt, clip_norm);
  if (pruned_) {
    apply_mask(model_.cell().wh(), wh_mask_);
    apply_mask(model_.cell().wx(), wx_mask_);
  }
  return nll;
}

void WeightPrunedLm::prune_weights(double sparsity) {
  wh_mask_ = prune_by_magnitude(model_.cell().wh(), sparsity);
  wx_mask_ = prune_by_magnitude(model_.cell().wx(), sparsity);
  pruned_ = true;
}

double WeightPrunedLm::recurrent_weight_sparsity() const {
  return weight_sparsity(model_.cell().wh());
}

double WeightPrunedLm::input_weight_sparsity() const {
  return weight_sparsity(model_.cell().wx());
}

}  // namespace zss::baseline
