// ESE-style timing model for weight-sparse LSTM acceleration.
//
// ESE (Han et al., FPGA'17) distributes the rows of each weight matrix
// round-robin over N PEs; for every input element (column), each PE
// walks its own slice of that column's non-zeros. All PEs must finish a
// column before the next broadcast, so the column costs
// max-over-PEs(non-zeros in slice) cycles — load imbalance wastes the
// difference. CBSR (Park et al., DATE'18) rebalances rows so each PE
// holds an equal share, modeled here as the balanced lower bound
// ceil(nnz / N). This reproduces from first principles the 25-30%
// CBSR-over-ESE gain the paper quotes for Fig. 10.
#pragma once

#include "baseline/csc_matrix.h"
#include "num/types.h"

namespace zss::baseline {

struct EseConfig {
  num::Index pes = 32;       // ESE uses 32 PEs per channel
  double clock_hz = 200e6;   // normalized to this paper's clock for
                             // architecture-to-architecture comparisons
  bool balanced = false;     // false = ESE row-interleave, true = CBSR
};

struct EseTimingResult {
  num::Index cycles = 0;          // matvec cycles (max-slice per column)
  num::Index ideal_cycles = 0;    // perfectly balanced lower bound
  num::Index nonzero_weights = 0; // stored entries incl. padding

  /// Fraction of PE-cycles wasted waiting on the slowest slice.
  double imbalance_waste() const {
    return cycles == 0 ? 0.0
                       : 1.0 - static_cast<double>(ideal_cycles) /
                                   static_cast<double>(cycles);
  }
};

class EseTimingModel {
 public:
  explicit EseTimingModel(const EseConfig& config);

  /// Cycles to multiply the compressed matrix by one (dense) vector.
  EseTimingResult matvec(const CscMatrix& matrix) const;

  /// Dense-equivalent GOPS for a matrix of the given dense dimensions
  /// processed in `cycles` (ESE's own accounting: ops of the dense
  /// matvec divided by sparse runtime).
  double equivalent_gops(num::Index rows, num::Index cols,
                         num::Index cycles) const;

  const EseConfig& config() const { return config_; }

 private:
  EseConfig config_;
};

}  // namespace zss::baseline
