#include "baseline/weight_pruner.h"

#include <algorithm>
#include <cmath>

#include "num/stats.h"

namespace zss::baseline {

WeightMask prune_by_magnitude(nn::Parameter& param, double sparsity) {
  ZSS_EXPECTS(sparsity >= 0.0 && sparsity <= 1.0);
  WeightMask mask;
  mask.keep.resize(param.value.rows(), param.value.cols(), 1);
  if (sparsity == 0.0 || param.value.size() == 0) return mask;

  const float threshold =
      num::quantile_abs(param.value.flat(), sparsity);
  auto values = param.value.flat();
  auto keep = mask.keep.flat();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::fabs(values[i]) < threshold) {
      values[i] = 0.0f;
      keep[i] = 0;
    }
  }
  return mask;
}

void apply_mask(nn::Parameter& param, const WeightMask& mask) {
  ZSS_EXPECTS(param.value.same_shape(
      // Mat<uint8> and Mat<float> have no common same_shape; compare
      // dimensions explicitly.
      num::Matrix(mask.keep.rows(), mask.keep.cols())));
  auto values = param.value.flat();
  auto grads = param.grad.flat();
  auto keep = mask.keep.flat();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (keep[i] == 0) {
      values[i] = 0.0f;
      if (!grads.empty()) grads[i] = 0.0f;
    }
  }
}

double weight_sparsity(const nn::Parameter& param) {
  return num::zero_fraction(param.value.flat());
}

}  // namespace zss::baseline
