// Compressed sparse column storage with relative row indices — the
// weight format of EIE/ESE. Each column stores its non-zero values plus
// the zero-run distance from the previous non-zero in that column,
// encoded in a fixed-width counter with escape padding (same mechanism
// as the paper's state encoder, applied to weights).
#pragma once

#include <cstdint>
#include <vector>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::baseline {

struct CscConfig {
  /// Relative-index width. EIE uses 4 bits; ESE uses similar small
  /// counters. Runs longer than 2^bits - 1 insert padding zeros.
  int index_bits = 4;

  num::Index max_run() const { return (num::Index{1} << index_bits) - 1; }
};

/// CSC matrix over float values (quantization happens downstream).
class CscMatrix {
 public:
  /// Compresses a dense (rows x cols) matrix.
  static CscMatrix compress(const num::Matrix& dense, const CscConfig& cfg);

  num::Index rows() const { return rows_; }
  num::Index cols() const { return cols_; }

  /// Stored entries of one column: parallel spans of values and
  /// relative row offsets (padding entries carry value 0).
  std::span<const float> column_values(num::Index col) const;
  std::span<const std::uint8_t> column_offsets(num::Index col) const;

  /// Number of stored entries (incl. padding) in one column.
  num::Index column_entries(num::Index col) const;

  /// Total stored entries and the padding overhead count.
  num::Index total_entries() const {
    return static_cast<num::Index>(values_.size());
  }
  num::Index padding_entries() const { return padding_; }

  /// Storage in bytes: 8-bit value + index_bits per entry, plus one
  /// column pointer (16-bit) per column.
  num::Index storage_bytes(const CscConfig& cfg) const;

  /// y += M x computed from the compressed form (reference/functional).
  void matvec_accum(std::span<const float> x, std::span<float> y) const;

  /// Reconstructs the dense matrix (exact inverse of compress).
  num::Matrix decompress() const;

 private:
  num::Index rows_ = 0;
  num::Index cols_ = 0;
  std::vector<float> values_;
  std::vector<std::uint8_t> offsets_;
  std::vector<num::Index> col_start_;  // size cols + 1
  num::Index padding_ = 0;
};

}  // namespace zss::baseline
