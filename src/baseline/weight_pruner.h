// Magnitude weight pruning — the ESE baseline (Han et al., FPGA'17).
//
// The paper's related work (§IV) contrasts its *state* skipping with
// ESE/CBSR, which skip multiplications with zero-valued *weights*. To
// compare the two approaches end to end we implement that baseline: the
// smallest-magnitude fraction of each weight matrix is zeroed and a
// fixed mask keeps those weights at zero through subsequent retraining
// (Han's prune-and-retrain recipe).
#pragma once

#include <vector>

#include "nn/parameter.h"
#include "num/matrix.h"
#include "num/types.h"

namespace zss::baseline {

/// A binary keep-mask over one parameter's elements.
struct WeightMask {
  num::Mat<std::uint8_t> keep;  // 1 = trainable, 0 = pruned to zero

  num::Index zeros() const {
    num::Index z = 0;
    for (auto v : keep.flat()) {
      if (v == 0) ++z;
    }
    return z;
  }

  double sparsity() const {
    return keep.size() == 0 ? 0.0
                            : static_cast<double>(zeros()) /
                                  static_cast<double>(keep.size());
  }
};

/// Builds a mask that zeroes the `sparsity` fraction of smallest-|w|
/// entries and applies it to the value matrix.
WeightMask prune_by_magnitude(nn::Parameter& param, double sparsity);

/// Re-applies the mask to the value (call after every optimizer step so
/// pruned weights stay zero during retraining) and zeroes the masked
/// gradient entries so momentum/Adam state stays clean.
void apply_mask(nn::Parameter& param, const WeightMask& mask);

/// Fraction of exactly-zero entries in a parameter's value.
double weight_sparsity(const nn::Parameter& param);

}  // namespace zss::baseline
