#include "baseline/ese_timing.h"

#include <algorithm>
#include <vector>

namespace zss::baseline {
namespace {

num::Index ceil_div(num::Index a, num::Index b) {
  ZSS_EXPECTS(b > 0);
  return (a + b - 1) / b;
}

}  // namespace

EseTimingModel::EseTimingModel(const EseConfig& config) : config_(config) {
  ZSS_EXPECTS(config.pes >= 1);
  ZSS_EXPECTS(config.clock_hz > 0.0);
}

EseTimingResult EseTimingModel::matvec(const CscMatrix& matrix) const {
  EseTimingResult result;
  result.nonzero_weights = matrix.total_entries();

  std::vector<num::Index> slice(static_cast<std::size_t>(config_.pes));
  for (num::Index c = 0; c < matrix.cols(); ++c) {
    // Row r of the column belongs to PE (r % pes) under ESE's
    // round-robin interleave; count each PE's share of this column.
    std::fill(slice.begin(), slice.end(), 0);
    const auto offs = matrix.column_offsets(c);
    num::Index r = 0;
    for (std::size_t i = 0; i < offs.size(); ++i) {
      r += offs[i];
      ++slice[static_cast<std::size_t>(r % config_.pes)];
      ++r;
    }
    const num::Index nnz = matrix.column_entries(c);
    const num::Index balanced = ceil_div(nnz, config_.pes);
    const num::Index worst =
        *std::max_element(slice.begin(), slice.end());
    result.ideal_cycles += balanced;
    result.cycles += config_.balanced ? balanced : worst;
  }
  return result;
}

double EseTimingModel::equivalent_gops(num::Index rows, num::Index cols,
                                       num::Index cycles) const {
  ZSS_EXPECTS(cycles > 0);
  const double dense_ops =
      2.0 * static_cast<double>(rows) * static_cast<double>(cols);
  const double seconds = static_cast<double>(cycles) / config_.clock_hz;
  return dense_ops / seconds / 1e9;
}

}  // namespace zss::baseline
