#include "baseline/csc_matrix.h"

namespace zss::baseline {

CscMatrix CscMatrix::compress(const num::Matrix& dense,
                              const CscConfig& cfg) {
  ZSS_EXPECTS(cfg.index_bits >= 1 && cfg.index_bits <= 8);
  CscMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.col_start_.reserve(static_cast<std::size_t>(dense.cols()) + 1);
  m.col_start_.push_back(0);

  const num::Index max_run = cfg.max_run();
  for (num::Index c = 0; c < dense.cols(); ++c) {
    num::Index run = 0;
    for (num::Index r = 0; r < dense.rows(); ++r) {
      const float v = dense(r, c);
      if (v == 0.0f) {
        ++run;
        continue;
      }
      while (run > max_run) {
        m.values_.push_back(0.0f);  // escape padding entry
        m.offsets_.push_back(static_cast<std::uint8_t>(max_run));
        run -= max_run + 1;
        ++m.padding_;
      }
      m.values_.push_back(v);
      m.offsets_.push_back(static_cast<std::uint8_t>(run));
      run = 0;
    }
    m.col_start_.push_back(static_cast<num::Index>(m.values_.size()));
  }
  return m;
}

std::span<const float> CscMatrix::column_values(num::Index col) const {
  ZSS_EXPECTS(col >= 0 && col < cols_);
  const auto begin = static_cast<std::size_t>(col_start_[static_cast<std::size_t>(col)]);
  const auto end = static_cast<std::size_t>(col_start_[static_cast<std::size_t>(col) + 1]);
  return {values_.data() + begin, end - begin};
}

std::span<const std::uint8_t> CscMatrix::column_offsets(num::Index col) const {
  ZSS_EXPECTS(col >= 0 && col < cols_);
  const auto begin = static_cast<std::size_t>(col_start_[static_cast<std::size_t>(col)]);
  const auto end = static_cast<std::size_t>(col_start_[static_cast<std::size_t>(col) + 1]);
  return {offsets_.data() + begin, end - begin};
}

num::Index CscMatrix::column_entries(num::Index col) const {
  ZSS_EXPECTS(col >= 0 && col < cols_);
  return col_start_[static_cast<std::size_t>(col) + 1] -
         col_start_[static_cast<std::size_t>(col)];
}

num::Index CscMatrix::storage_bytes(const CscConfig& cfg) const {
  const double entry_bits = 8.0 + cfg.index_bits;
  const auto entry_bytes = static_cast<num::Index>(
      (static_cast<double>(total_entries()) * entry_bits + 7.0) / 8.0);
  return entry_bytes + 2 * cols_;  // 16-bit column pointers
}

void CscMatrix::matvec_accum(std::span<const float> x,
                             std::span<float> y) const {
  ZSS_EXPECTS(static_cast<num::Index>(x.size()) == cols_);
  ZSS_EXPECTS(static_cast<num::Index>(y.size()) == rows_);
  for (num::Index c = 0; c < cols_; ++c) {
    const float xv = x[static_cast<std::size_t>(c)];
    if (xv == 0.0f) continue;  // input-side skipping, like EIE
    const auto vals = column_values(c);
    const auto offs = column_offsets(c);
    num::Index r = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      r += offs[i];
      ZSS_ASSERT(r < rows_);
      y[static_cast<std::size_t>(r)] += vals[i] * xv;
      ++r;
    }
  }
}

num::Matrix CscMatrix::decompress() const {
  num::Matrix dense(rows_, cols_, 0.0f);
  for (num::Index c = 0; c < cols_; ++c) {
    const auto vals = column_values(c);
    const auto offs = column_offsets(c);
    num::Index r = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      r += offs[i];
      dense(r, c) = vals[i];
      ++r;
    }
  }
  return dense;
}

}  // namespace zss::baseline
