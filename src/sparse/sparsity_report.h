// Aggregated sparsity statistics across a run of timesteps — the
// measurement behind Fig. 7 (batch-intersected sparsity at batch 1/8/16).
#pragma once

#include <span>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::sparse {

/// Accumulates per-timestep sparsity of batched state matrices.
class SparsityMeter {
 public:
  /// Records one timestep. `state` rows are batch lanes.
  void observe(const num::Matrix& state);

  /// Records a pre-computed (all_zero_count, positions) pair; used by the
  /// accelerator which already knows its skip mask.
  void observe_counts(num::Index all_zero_positions, num::Index positions);

  /// Mean fraction of positions zero across all lanes (what Fig. 7 plots).
  double mean_sparsity() const;

  /// Mean fraction of individual elements that are zero (batch-ignorant
  /// sparsity; equals mean_sparsity at batch 1).
  double mean_element_sparsity() const;

  num::Index timesteps() const { return steps_; }

  void reset();

 private:
  num::Index steps_ = 0;
  double column_zero_sum_ = 0.0;   // sum over steps of all-zero fraction
  double element_zero_sum_ = 0.0;  // sum over steps of element-zero fraction
  bool has_elementwise_ = true;
};

}  // namespace zss::sparse
