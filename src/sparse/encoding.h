// Sparse state encoding — the paper's output "encoder" block (Fig. 6).
//
// After h_t is produced, a counter walks the vector and, for every
// position kept, records how many all-zero positions were skipped since
// the previous kept one (the *offset*). The offsets are written to DRAM
// with the values; at the next timestep the address generator uses them
// to fetch only the weight columns of non-zero state elements, so no
// decoder sits on the critical path (§III-B).
//
// With batching, a position may be dropped only when it is zero in every
// batch (Fig. 5(d)); the encoder therefore works on the *intersection*
// of the batch's zero patterns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::sparse {

/// One kept position: `offset` zero positions were skipped since the
/// previous kept entry (or since the start for the first entry), then
/// this position follows. The encoder stores one value per batch lane.
struct Entry {
  num::Index offset = 0;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Configuration of the hardware offset counter.
struct EncoderConfig {
  /// Counter width in bits. A zero run longer than 2^bits - 1 forces an
  /// escape: a padding entry whose stored values are zero, exactly like
  /// the zero-free formats of Cnvlutin/EIE.
  int offset_bits = 8;

  num::Index max_offset() const {
    return (num::Index{1} << offset_bits) - 1;
  }
};

/// Encoded batch of state vectors. Values are stored position-major:
/// values[i * batch + b] is lane b of the i-th kept position.
template <typename T>
struct EncodedState {
  std::vector<Entry> entries;
  std::vector<T> values;
  num::Index batch = 1;
  num::Index dense_size = 0;

  num::Index kept_positions() const {
    return static_cast<num::Index>(entries.size());
  }

  /// Pre-grows the entry/value stores for a state of `dense_size`
  /// positions and `batch` lanes. Every entry (kept or padding) consumes
  /// at least one position, so dense_size bounds the entry count; after
  /// this call encode_into allocates nothing.
  void reserve(num::Index dense_size, num::Index batch) {
    entries.reserve(static_cast<std::size_t>(dense_size));
    values.reserve(static_cast<std::size_t>(dense_size * batch));
  }

  /// Bytes this encoding occupies in DRAM: one value byte per lane per
  /// kept position plus one offset word per kept position.
  num::Index storage_bytes(const EncoderConfig& cfg) const {
    const num::Index offset_bytes = (cfg.offset_bits + 7) / 8;
    return kept_positions() * (batch * static_cast<num::Index>(sizeof(T)) +
                               offset_bytes);
  }
};

/// True at position j when every batch lane of column j is zero.
/// `state` is batch-major: row b = lane b's dense state vector.
template <typename T>
std::vector<bool> all_zero_columns(const num::Mat<T>& state);

/// Fraction of positions that are zero in every lane — the quantity
/// Fig. 7 reports as "sparsity degree over different batch sizes".
template <typename T>
double batch_sparsity_degree(const num::Mat<T>& state);

/// Encodes a batch of dense state vectors (rows = lanes) into the
/// offset/value stream, honouring the counter width.
template <typename T>
EncodedState<T> encode(const num::Mat<T>& state, const EncoderConfig& cfg);

/// Encodes into an existing EncodedState, reusing its entry/value
/// capacity — the per-timestep path of the inference engine, which must
/// not allocate once warm (see EncodedState::reserve). Equivalent to
/// `out = encode(state, cfg)`.
template <typename T>
void encode_into(const num::Mat<T>& state, const EncoderConfig& cfg,
                 EncodedState<T>& out);

/// Convenience overload for a single vector (batch of one).
template <typename T>
EncodedState<T> encode(std::span<const T> state, const EncoderConfig& cfg);

/// Reconstructs the dense batch (rows = lanes). Exact inverse of encode.
template <typename T>
num::Mat<T> decode(const EncodedState<T>& enc);

}  // namespace zss::sparse
