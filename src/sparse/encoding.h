// Sparse state encoding — the paper's output "encoder" block (Fig. 6).
//
// After h_t is produced, a counter walks the vector and, for every
// position kept, records how many all-zero positions were skipped since
// the previous kept one (the *offset*). The offsets are written to DRAM
// with the values; at the next timestep the address generator uses them
// to fetch only the weight columns of non-zero state elements, so no
// decoder sits on the critical path (§III-B).
//
// With batching the offset encoder may drop a position only when it is
// zero in every batch lane (Fig. 5(d)); it therefore works on the
// *intersection* of the batch's zero patterns. The per-lane CSR encoder
// below (LaneEncodedState) removes that restriction for the software
// path: each lane keeps exactly its own non-zero positions, so skip
// gains survive batching (see docs/architecture.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::sparse {

/// One kept position: `offset` zero positions were skipped since the
/// previous kept entry (or since the start for the first entry), then
/// this position follows. The encoder stores one value per batch lane.
struct Entry {
  num::Index offset = 0;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Configuration of the hardware offset counter.
struct EncoderConfig {
  /// Counter width in bits. A zero run longer than 2^bits - 1 forces an
  /// escape: a padding entry whose stored values are zero, exactly like
  /// the zero-free formats of Cnvlutin/EIE.
  int offset_bits = 8;

  num::Index max_offset() const {
    return (num::Index{1} << offset_bits) - 1;
  }
};

/// Encoded batch of state vectors. Values are stored position-major:
/// values[i * batch + b] is lane b of the i-th kept position.
template <typename T>
struct EncodedState {
  std::vector<Entry> entries;
  std::vector<T> values;
  num::Index batch = 1;
  num::Index dense_size = 0;

  num::Index kept_positions() const {
    return static_cast<num::Index>(entries.size());
  }

  /// Pre-grows the entry/value stores for a state of `dense_size`
  /// positions and `batch` lanes. Every entry (kept or padding) consumes
  /// at least one position, so dense_size bounds the entry count; after
  /// this call encode_into allocates nothing.
  void reserve(num::Index dense_size, num::Index batch) {
    entries.reserve(static_cast<std::size_t>(dense_size));
    values.reserve(static_cast<std::size_t>(dense_size * batch));
  }

  /// Bytes this encoding occupies in DRAM: one value byte per lane per
  /// kept position plus one offset word per kept position.
  num::Index storage_bytes(const EncoderConfig& cfg) const {
    const num::Index offset_bytes = (cfg.offset_bits + 7) / 8;
    return kept_positions() * (batch * static_cast<num::Index>(sizeof(T)) +
                               offset_bytes);
  }
};

/// Per-lane CSR encoding of a batch of state vectors — the batched
/// counterpart of the paper's per-sequence skip: instead of encoding
/// only the *intersection* of the batch's zero patterns, every lane
/// keeps exactly its own non-zero positions, so the exploitable
/// sparsity no longer collapses as 1 - s^B with batch size (the serving
/// regime of Fig. 7). Lane b's kept positions are
/// positions[row_start[b] .. row_start[b+1]) in ascending order, with
/// the matching values alongside — the shape num::sparse_accum_rows_multi
/// consumes directly (no offset counter: absolute positions, CSR-style).
template <typename T>
struct LaneEncodedState {
  std::vector<num::Index> positions;  // lane-major kept positions
  std::vector<T> values;              // values[i] belongs to positions[i]
  std::vector<num::Index> row_start;  // batch + 1 CSR offsets
  num::Index batch = 0;
  num::Index dense_size = 0;

  /// Kept positions summed over all lanes (the per-lane effectual work).
  num::Index total_kept() const {
    return row_start.empty() ? 0 : row_start.back();
  }

  num::Index kept_in_lane(num::Index b) const {
    return row_start[static_cast<std::size_t>(b + 1)] -
           row_start[static_cast<std::size_t>(b)];
  }

  /// Positions kept by at least one lane — what the batch-intersection
  /// encoder would have fetched; kept for comparison in stats/benches.
  num::Index union_kept() const { return union_kept_; }

  /// Mean per-lane zero fraction of the encoded state.
  double lane_sparsity() const {
    const num::Index total = batch * dense_size;
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(total_kept()) /
                                  static_cast<double>(total);
  }

  /// Pre-grows every store for a state of `dense_size` positions and
  /// `batch` lanes; after this call encode_lanes_into allocates nothing.
  void reserve(num::Index dense_size, num::Index batch) {
    positions.reserve(static_cast<std::size_t>(dense_size * batch));
    values.reserve(static_cast<std::size_t>(dense_size * batch));
    row_start.reserve(static_cast<std::size_t>(batch + 1));
    col_mark_.reserve(static_cast<std::size_t>(dense_size));
  }

 private:
  template <typename U>
  friend void encode_lanes_into(const num::Mat<U>& state,
                                LaneEncodedState<U>& out);
  std::vector<unsigned char> col_mark_;  // union scratch, one byte per pos
  num::Index union_kept_ = 0;
};

/// Encodes a batch of dense state vectors (rows = lanes) into the
/// per-lane CSR form, reusing `out`'s capacity (the per-timestep path of
/// the batched inference engine, which must not allocate once warm —
/// see LaneEncodedState::reserve).
template <typename T>
void encode_lanes_into(const num::Mat<T>& state, LaneEncodedState<T>& out);

/// Reconstructs the dense batch from a per-lane encoding. Exact inverse
/// of encode_lanes_into.
template <typename T>
num::Mat<T> decode_lanes(const LaneEncodedState<T>& enc);

/// True at position j when every batch lane of column j is zero.
/// `state` is batch-major: row b = lane b's dense state vector.
template <typename T>
std::vector<bool> all_zero_columns(const num::Mat<T>& state);

/// Fraction of positions that are zero in every lane — the quantity
/// Fig. 7 reports as "sparsity degree over different batch sizes".
template <typename T>
double batch_sparsity_degree(const num::Mat<T>& state);

/// Encodes a batch of dense state vectors (rows = lanes) into the
/// offset/value stream, honouring the counter width.
template <typename T>
EncodedState<T> encode(const num::Mat<T>& state, const EncoderConfig& cfg);

/// Encodes into an existing EncodedState, reusing its entry/value
/// capacity — the per-timestep path of the inference engine, which must
/// not allocate once warm (see EncodedState::reserve). Equivalent to
/// `out = encode(state, cfg)`.
template <typename T>
void encode_into(const num::Mat<T>& state, const EncoderConfig& cfg,
                 EncodedState<T>& out);

/// Convenience overload for a single vector (batch of one).
template <typename T>
EncodedState<T> encode(std::span<const T> state, const EncoderConfig& cfg);

/// Reconstructs the dense batch (rows = lanes). Exact inverse of encode.
template <typename T>
num::Mat<T> decode(const EncodedState<T>& enc);

}  // namespace zss::sparse
