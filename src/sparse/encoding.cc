#include "sparse/encoding.h"

namespace zss::sparse {

template <typename T>
std::vector<bool> all_zero_columns(const num::Mat<T>& state) {
  ZSS_EXPECTS(state.rows() > 0);
  std::vector<bool> zero(static_cast<std::size_t>(state.cols()), true);
  for (num::Index b = 0; b < state.rows(); ++b) {
    const T* row = state.data() + b * state.cols();
    for (num::Index j = 0; j < state.cols(); ++j) {
      if (row[j] != T{}) zero[static_cast<std::size_t>(j)] = false;
    }
  }
  return zero;
}

template <typename T>
double batch_sparsity_degree(const num::Mat<T>& state) {
  if (state.cols() == 0) return 0.0;
  const auto zero = all_zero_columns(state);
  num::Index count = 0;
  for (bool z : zero) {
    if (z) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(state.cols());
}

template <typename T>
void encode_into(const num::Mat<T>& state, const EncoderConfig& cfg,
                 EncodedState<T>& out) {
  ZSS_EXPECTS(cfg.offset_bits >= 1 && cfg.offset_bits <= 16);
  ZSS_EXPECTS(state.rows() > 0);
  out.entries.clear();
  out.values.clear();
  out.batch = state.rows();
  out.dense_size = state.cols();

  const num::Index B = state.rows();
  const num::Index n = state.cols();
  const num::Index max_off = cfg.max_offset();
  const T* data = state.data();

  num::Index run = 0;
  for (num::Index j = 0; j < n; ++j) {
    // Batch-intersected zero test, column j across all lanes. Adjacent
    // j share cache lines per lane, so the strided walk stays in L1.
    bool zero = true;
    for (num::Index b = 0; b < B; ++b) {
      if (data[b * n + j] != T{}) {
        zero = false;
        break;
      }
    }
    if (zero) {
      ++run;
      continue;
    }
    // Counter overflow: emit padding entries carrying zero values until
    // the remaining run fits in the counter.
    while (run > max_off) {
      out.entries.push_back(Entry{max_off});
      for (num::Index b = 0; b < B; ++b) out.values.push_back(T{});
      run -= max_off + 1;  // the padding entry itself consumes a position
    }
    out.entries.push_back(Entry{run});
    for (num::Index b = 0; b < B; ++b) {
      out.values.push_back(data[b * n + j]);
    }
    run = 0;
  }
  // Trailing zeros need no entries: the decoder knows dense_size.
}

template <typename T>
void encode_lanes_into(const num::Mat<T>& state, LaneEncodedState<T>& out) {
  ZSS_EXPECTS(state.rows() > 0);
  const num::Index B = state.rows();
  const num::Index n = state.cols();
  out.positions.clear();
  out.values.clear();
  out.row_start.clear();
  out.batch = B;
  out.dense_size = n;
  out.col_mark_.assign(static_cast<std::size_t>(n), 0);

  const T* data = state.data();
  out.row_start.push_back(0);
  for (num::Index b = 0; b < B; ++b) {
    const T* row = data + b * n;
    // Each lane is one contiguous ascending pass — the same walk the
    // paper's encoder does per sequence, without the offset counter.
    for (num::Index j = 0; j < n; ++j) {
      if (row[j] == T{}) continue;
      out.positions.push_back(j);
      out.values.push_back(row[j]);
      out.col_mark_[static_cast<std::size_t>(j)] = 1;
    }
    out.row_start.push_back(static_cast<num::Index>(out.positions.size()));
  }
  num::Index kept_union = 0;
  for (unsigned char m : out.col_mark_) kept_union += m;
  out.union_kept_ = kept_union;
}

template <typename T>
num::Mat<T> decode_lanes(const LaneEncodedState<T>& enc) {
  num::Mat<T> out(enc.batch, enc.dense_size, T{});
  for (num::Index b = 0; b < enc.batch; ++b) {
    for (num::Index e = enc.row_start[static_cast<std::size_t>(b)];
         e < enc.row_start[static_cast<std::size_t>(b + 1)]; ++e) {
      const num::Index pos = enc.positions[static_cast<std::size_t>(e)];
      ZSS_ASSERT(pos >= 0 && pos < enc.dense_size);
      out(b, pos) = enc.values[static_cast<std::size_t>(e)];
    }
  }
  return out;
}

template <typename T>
EncodedState<T> encode(const num::Mat<T>& state, const EncoderConfig& cfg) {
  EncodedState<T> enc;
  encode_into(state, cfg, enc);
  return enc;
}

template <typename T>
EncodedState<T> encode(std::span<const T> state, const EncoderConfig& cfg) {
  num::Mat<T> m(1, static_cast<num::Index>(state.size()));
  for (std::size_t j = 0; j < state.size(); ++j) m(0, static_cast<num::Index>(j)) = state[j];
  return encode(m, cfg);
}

template <typename T>
num::Mat<T> decode(const EncodedState<T>& enc) {
  num::Mat<T> out(enc.batch, enc.dense_size, T{});
  num::Index pos = 0;
  for (std::size_t i = 0; i < enc.entries.size(); ++i) {
    pos += enc.entries[i].offset;
    ZSS_ASSERT(pos < enc.dense_size);
    for (num::Index b = 0; b < enc.batch; ++b) {
      out(b, pos) = enc.values[i * static_cast<std::size_t>(enc.batch) +
                               static_cast<std::size_t>(b)];
    }
    ++pos;
  }
  return out;
}

// Explicit instantiations for the element types the library uses.
template std::vector<bool> all_zero_columns<float>(const num::Mat<float>&);
template std::vector<bool> all_zero_columns<std::int8_t>(
    const num::Mat<std::int8_t>&);
template double batch_sparsity_degree<float>(const num::Mat<float>&);
template double batch_sparsity_degree<std::int8_t>(
    const num::Mat<std::int8_t>&);
template void encode_into<float>(const num::Mat<float>&, const EncoderConfig&,
                                 EncodedState<float>&);
template void encode_into<std::int8_t>(const num::Mat<std::int8_t>&,
                                       const EncoderConfig&,
                                       EncodedState<std::int8_t>&);
template void encode_lanes_into<float>(const num::Mat<float>&,
                                       LaneEncodedState<float>&);
template void encode_lanes_into<std::int8_t>(const num::Mat<std::int8_t>&,
                                             LaneEncodedState<std::int8_t>&);
template num::Mat<float> decode_lanes<float>(const LaneEncodedState<float>&);
template num::Mat<std::int8_t> decode_lanes<std::int8_t>(
    const LaneEncodedState<std::int8_t>&);
template EncodedState<float> encode<float>(const num::Mat<float>&,
                                           const EncoderConfig&);
template EncodedState<std::int8_t> encode<std::int8_t>(
    const num::Mat<std::int8_t>&, const EncoderConfig&);
template EncodedState<float> encode<float>(std::span<const float>,
                                           const EncoderConfig&);
template EncodedState<std::int8_t> encode<std::int8_t>(
    std::span<const std::int8_t>, const EncoderConfig&);
template num::Mat<float> decode<float>(const EncodedState<float>&);
template num::Mat<std::int8_t> decode<std::int8_t>(
    const EncodedState<std::int8_t>&);

}  // namespace zss::sparse
