#include "sparse/sparsity_report.h"

#include "num/stats.h"
#include "sparse/encoding.h"

namespace zss::sparse {

void SparsityMeter::observe(const num::Matrix& state) {
  ZSS_EXPECTS(state.cols() > 0);
  column_zero_sum_ += batch_sparsity_degree(state);
  element_zero_sum_ += num::zero_fraction(state.flat());
  ++steps_;
}

void SparsityMeter::observe_counts(num::Index all_zero_positions,
                                   num::Index positions) {
  ZSS_EXPECTS(positions > 0);
  ZSS_EXPECTS(all_zero_positions >= 0 && all_zero_positions <= positions);
  column_zero_sum_ += static_cast<double>(all_zero_positions) /
                      static_cast<double>(positions);
  has_elementwise_ = false;
  ++steps_;
}

double SparsityMeter::mean_sparsity() const {
  if (steps_ == 0) return 0.0;
  return column_zero_sum_ / static_cast<double>(steps_);
}

double SparsityMeter::mean_element_sparsity() const {
  if (steps_ == 0 || !has_elementwise_) return mean_sparsity();
  return element_zero_sum_ / static_cast<double>(steps_);
}

void SparsityMeter::reset() {
  steps_ = 0;
  column_zero_sum_ = 0.0;
  element_zero_sum_ = 0.0;
  has_elementwise_ = true;
}

}  // namespace zss::sparse
