#include "core/stacked_engine.h"

namespace zss::core {

StackedEngine::StackedEngine(std::span<const nn::LstmCell* const> cells,
                             std::span<const StatePruner* const> pruners,
                             sparse::EncoderConfig encoder,
                             QuantConfig quant) {
  ZSS_EXPECTS(!cells.empty());
  ZSS_EXPECTS(cells.size() == pruners.size());
  dx_ = cells.front()->input_dim();
  dh_ = cells.front()->hidden_dim();
  for (std::size_t l = 0; l < cells.size(); ++l) {
    ZSS_EXPECTS(cells[l]->hidden_dim() == dh_);
    ZSS_EXPECTS(l == 0 || cells[l]->input_dim() == dh_);
    layers_.emplace_back(*cells[l], *pruners[l], encoder, quant);
  }
}

void StackedEngine::reserve(num::Index max_batch) {
  for (auto& layer : layers_) layer.reserve(max_batch);
  if (layers_.size() > 1) {
    ff_[0].reshape(max_batch, dh_);
    ff_[1].reshape(max_batch, dh_);
  }
}

void StackedEngine::step(const num::Matrix& x, std::span<num::Matrix> h,
                         std::span<num::Matrix> c, num::Matrix* dense_top) {
  const std::size_t L = layers_.size();
  ZSS_EXPECTS(h.size() == L && c.size() == L);
  const num::Matrix* input = &x;
  for (std::size_t l = 0; l < L; ++l) {
    // All but the top layer must tap their dense h — it is the next
    // layer's input. The top layer taps only if the caller asked.
    num::Matrix* out = l + 1 < L ? &ff_[l % 2] : dense_top;
    layers_[l].step(*input, h[l], c[l], out);
    if (l + 1 < L) input = &ff_[l % 2];
  }
}

void StackedEngine::step_dense(const num::Matrix& x, std::span<num::Matrix> h,
                               std::span<num::Matrix> c,
                               num::Matrix* dense_top) {
  const std::size_t L = layers_.size();
  ZSS_EXPECTS(h.size() == L && c.size() == L);
  const num::Matrix* input = &x;
  for (std::size_t l = 0; l < L; ++l) {
    num::Matrix* out = l + 1 < L ? &ff_[l % 2] : dense_top;
    layers_[l].step_dense(*input, h[l], c[l], out);
    if (l + 1 < L) input = &ff_[l % 2];
  }
}

InferenceStats StackedEngine::stats() const {
  InferenceStats sum;
  for (const auto& layer : layers_) {
    const InferenceStats& s = layer.stats();
    sum.state_macs_total += s.state_macs_total;
    sum.state_macs_effectual += s.state_macs_effectual;
    sum.input_macs += s.input_macs;
    sum.kept_positions += s.kept_positions;
    sum.positions += s.positions;
    sum.lane_kept_positions += s.lane_kept_positions;
    sum.lane_positions += s.lane_positions;
  }
  // One stacked step is one step, not L — callers use steps to average.
  sum.steps = layers_.front().stats().steps;
  return sum;
}

void StackedEngine::reset_stats() {
  for (auto& layer : layers_) layer.reset_stats();
}

}  // namespace zss::core
