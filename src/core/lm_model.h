// Pruned-state LSTM language model (char-level and word-level tasks).
//
// Architecture per §II-B: one LSTM layer followed by a classifier.
//  - char-LM: one-hot input (d_x = vocab = 50), d_h = 1000 in the paper.
//  - word-LM: embedding of size 300 (so x_t is dense), d_h = 300,
//    dropout 0.5 on the non-recurrent connection.
// The recurrence consumes the pruned state h^p_{t-1} (Eq. 4); training
// keeps the dense state and backpropagates straight through the prune.
#pragma once

#include <memory>
#include <vector>

#include "core/state_pruner.h"
#include "data/batcher.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/optimizer.h"
#include "num/rng.h"
#include "sparse/sparsity_report.h"

namespace zss::core {

struct LmConfig {
  num::Index vocab = 50;
  /// 0 selects one-hot input (char model); >0 inserts an embedding.
  num::Index embed_dim = 0;
  num::Index hidden = 128;
  double dropout = 0.0;
  PrunerConfig pruner;
  std::uint64_t seed = 42;

  num::Index input_dim() const { return embed_dim > 0 ? embed_dim : vocab; }
};

/// Scalar results of evaluating a token stream.
struct LmEval {
  double mean_nll = 0.0;  // nats per token
  double bpc = 0.0;
  double ppw = 0.0;
  double state_sparsity = 0.0;  // mean fraction of pruned h elements
};

class PrunedLstmLm {
 public:
  explicit PrunedLstmLm(const LmConfig& config);

  const LmConfig& config() const { return config_; }

  /// One BPTT window: forward with pruned recurrence, backward with STE,
  /// clip (if clip_norm > 0) and step. Returns mean NLL per token.
  /// Recurrent state carries across windows; `batch.first` resets it.
  double train_window(const data::LmBatch& batch, nn::Optimizer& opt,
                      float clip_norm);

  /// Full-stream evaluation (no dropout, pruned recurrence).
  LmEval evaluate(std::span<const num::Index> stream, num::Index batch,
                  num::Index seq_len);

  /// Runs the recurrence over a stream and records each stored (pruned)
  /// state into the meter; optionally keeps the stored state matrices
  /// (for the accelerator benches) and/or the pre-prune dense states
  /// (for exporting a fixed threshold that matches the pruned dynamics).
  /// Returns mean NLL for convenience.
  double collect_states(std::span<const num::Index> stream, num::Index batch,
                        num::Index max_steps, sparse::SparsityMeter& meter,
                        std::vector<num::Matrix>* states = nullptr,
                        std::vector<num::Matrix>* dense_states = nullptr);

  /// Samples `count` tokens, starting from `prefix` (greedy=false draws
  /// from the softmax; true takes the argmax).
  std::vector<num::Index> sample(std::span<const num::Index> prefix,
                                 num::Index count, bool greedy,
                                 num::Rng& rng);

  std::vector<nn::Parameter*> parameters();

  nn::LstmCell& cell() { return cell_; }
  const nn::LstmCell& cell() const { return cell_; }
  nn::Linear& classifier() { return classifier_; }
  const nn::Linear& classifier() const { return classifier_; }
  const StatePruner& pruner() const { return pruner_; }

  /// Replaces the pruner (used to sweep sparsity on one trained model).
  void set_pruner(const PrunerConfig& config) { pruner_ = StatePruner(config); }

  void reset_state(num::Index batch);

 private:
  /// Produces the (B x input_dim) input matrix for tokens at one step.
  void make_input(std::span<const num::Index> tokens, num::Matrix& x) const;

  LmConfig config_;
  num::Rng rng_;
  std::unique_ptr<nn::Embedding> embedding_;  // null for one-hot input
  nn::LstmCell cell_;
  nn::Linear classifier_;
  StatePruner pruner_;

  // Carried recurrent state (values only; no gradient across windows).
  num::Matrix h_;
  num::Matrix c_;
};

}  // namespace zss::core
