// "Sweet spot" selection (Figs. 2-4): the highest sparsity degree whose
// task metric is no worse than the dense baseline (plus a tolerance for
// run-to-run noise). Lower metric is better for all three paper metrics
// (BPC, PPW, MER).
#pragma once

#include <span>
#include <vector>

#include "num/types.h"

namespace zss::core {

struct SweepPoint {
  double sparsity = 0.0;  // requested sparsity degree, in [0, 1]
  double metric = 0.0;    // BPC / PPW / MER — lower is better
};

struct SweetSpot {
  double sparsity = 0.0;
  double metric = 0.0;
  bool found = false;
};

/// `points` must include a dense point (sparsity 0) used as the baseline;
/// returns the highest-sparsity point with
/// metric <= baseline * (1 + rel_tolerance).
SweetSpot find_sweet_spot(std::span<const SweepPoint> points,
                          double rel_tolerance = 0.02);

}  // namespace zss::core
