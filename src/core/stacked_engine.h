// L-layer wrapper over SparseLstmEngine — the inference twin of the
// trainer's StackedPrunedLstmLm.
//
// Wiring matches training exactly (core/stacked_lstm.cc): each layer's
// recurrence consumes its own pruned stored state, but what feeds the
// NEXT layer (and, off the top layer, the classifier) is the DENSE h of
// the step — only the recurrent read path skips. The per-layer engines
// tap that dense h via SparseLstmEngine's dense_h out-param, so a
// stacked step is bit-for-bit L independent single-layer steps chained
// through internal feed-forward buffers (the oracle the stacked-engine
// test suite checks, fp32 and int8, on every backend).
//
// Contracts inherited per layer and preserved by the wrapper:
//  * step() == step_dense() bit-identity;
//  * zero heap allocations once reserve(max_batch) has run (the
//    feed-forward ping-pong buffers are reserved with the layers);
//  * h/c state is caller-owned, one (B x dh) pair per layer, bound per
//    call — the serving layer passes a session's own matrices through.
//
// step_layer() exposes a single layer's step so the serving shard can
// pipeline layers across consecutive steps (layer l of step t runs
// while layer l-1 of step t+1 runs — serve/shard.cc): concurrent
// flights always occupy DIFFERENT layers, and distinct layers are
// distinct SparseLstmEngine instances with disjoint scratch, so the
// wavefront needs no locking and stays bit-identical to the sequential
// schedule.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/matrix.h"
#include "sparse/encoding.h"

namespace zss::core {

class StackedEngine {
 public:
  /// Borrows `cells[l]` / `pruners[l]` for layer l; the caller keeps
  /// them alive. Layer 0's input dim is the model input dim; every
  /// deeper layer must consume exactly hidden_dim. All layers share one
  /// encoder/quant config (the quantization grid is a model-wide
  /// property recorded in the checkpoint header).
  StackedEngine(std::span<const nn::LstmCell* const> cells,
                std::span<const StatePruner* const> pruners,
                sparse::EncoderConfig encoder = {}, QuantConfig quant = {});

  num::Index layers() const { return static_cast<num::Index>(layers_.size()); }
  num::Index hidden_dim() const { return dh_; }
  num::Index input_dim() const { return dx_; }

  /// One timestep through all L layers. `h` and `c` hold one (B x dh)
  /// matrix per layer, updated in place (stored pruned, like the
  /// single-layer engine). `dense_top`, when non-null, receives the
  /// top layer's dense (unpruned) h — what the trained classifier
  /// consumes.
  void step(const num::Matrix& x, std::span<num::Matrix> h,
            std::span<num::Matrix> c, num::Matrix* dense_top = nullptr);

  /// Dense-matvec reference; must match step() bit-for-bit.
  void step_dense(const num::Matrix& x, std::span<num::Matrix> h,
                  std::span<num::Matrix> c, num::Matrix* dense_top = nullptr);

  /// One layer's step, for the serving wavefront: `input` is the model
  /// input (l == 0) or the previous layer's dense h; `dense_h` must be
  /// non-null for l < layers()-1 (it feeds layer l+1) and taps the
  /// classifier view off the top layer.
  void step_layer(num::Index l, const num::Matrix& input, num::Matrix& h,
                  num::Matrix& c, num::Matrix* dense_h) {
    layers_[static_cast<std::size_t>(l)].step(input, h, c, dense_h);
  }

  /// Pre-grows every layer and the feed-forward buffers for batches up
  /// to `max_batch` (same steady-state contract as the single-layer
  /// reserve).
  void reserve(num::Index max_batch);

  /// Cumulative counters summed over all layers (each layer's recurrent
  /// skip contributes its own effectual/total MACs).
  InferenceStats stats() const;
  void reset_stats();

  /// Most recent step of layer 0 — the batch-shape feedback signal the
  /// serving layer reads (all layers see the same batch).
  const StepStats& last_step_stats() const {
    return layers_.front().last_step_stats();
  }

  /// Layer 0's scratch arena — the allocation-stability instrument the
  /// serving tests watch (all layers share the reserve discipline).
  const num::Workspace& workspace() const {
    return layers_.front().workspace();
  }

  bool quantized() const { return layers_.front().quantized(); }

  const SparseLstmEngine& layer_engine(num::Index l) const {
    return layers_[static_cast<std::size_t>(l)];
  }

 private:
  // deque: SparseLstmEngine is neither movable nor copyable (it owns a
  // Workspace and packed weights addressed by span), so the layers are
  // emplaced in place and never relocated.
  std::deque<SparseLstmEngine> layers_;
  num::Index dx_ = 0;
  num::Index dh_ = 0;
  // Feed-forward ping-pong: layer l reads one buffer and writes its
  // dense h into the other, so a layer never aliases its own input.
  num::Matrix ff_[2];
};

}  // namespace zss::core
