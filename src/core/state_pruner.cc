#include "core/state_pruner.h"

#include <cmath>

#include "num/stats.h"

namespace zss::core {

StatePruner::StatePruner(const PrunerConfig& config) : config_(config) {
  switch (config.mode) {
    case PruneMode::kNone:
      break;
    case PruneMode::kFixedThreshold:
      ZSS_EXPECTS(config.threshold >= 0.0f);
      break;
    case PruneMode::kTargetSparsity:
      ZSS_EXPECTS(config.target_sparsity >= 0.0 &&
                  config.target_sparsity <= 1.0);
      break;
  }
}

float StatePruner::effective_threshold(const num::Matrix& h) const {
  std::vector<float> scratch;
  return effective_threshold(h, scratch);
}

float StatePruner::effective_threshold(const num::Matrix& h,
                                       std::vector<float>& scratch) const {
  switch (config_.mode) {
    case PruneMode::kNone:
      return 0.0f;
    case PruneMode::kFixedThreshold:
      return config_.threshold;
    case PruneMode::kTargetSparsity:
      if (h.size() == 0 || config_.target_sparsity == 0.0) return 0.0f;
      // The q-quantile of |h| puts floor(q*n) elements strictly below T
      // (Eq. 5 compares with strict <, so the quantile element survives).
      return num::quantile_abs(h.flat(), config_.target_sparsity, scratch);
  }
  ZSS_ASSERT(false);
  return 0.0f;
}

double StatePruner::prune(const num::Matrix& h, num::Matrix& pruned) const {
  pruned.resize(h.rows(), h.cols());
  if (!enabled()) {
    auto src = h.flat();
    auto dst = pruned.flat();
    std::copy(src.begin(), src.end(), dst.begin());
    return 0.0;
  }
  const float t = effective_threshold(h);
  auto src = h.flat();
  auto dst = pruned.flat();
  num::Index zeros = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (std::fabs(src[i]) < t) {
      dst[i] = 0.0f;
      ++zeros;
    } else {
      dst[i] = src[i];
    }
  }
  return src.empty() ? 0.0
                     : static_cast<double>(zeros) /
                           static_cast<double>(src.size());
}

double StatePruner::prune_inplace(num::Matrix& h) const {
  std::vector<float> scratch;
  return prune_inplace(h, scratch);
}

double StatePruner::prune_inplace(num::Matrix& h,
                                  std::vector<float>& scratch) const {
  if (!enabled()) return 0.0;
  const float t = effective_threshold(h, scratch);
  auto v = h.flat();
  num::Index zeros = 0;
  for (float& x : v) {
    if (std::fabs(x) < t) {
      x = 0.0f;
      ++zeros;
    }
  }
  return v.empty()
             ? 0.0
             : static_cast<double>(zeros) / static_cast<double>(v.size());
}

}  // namespace zss::core
