// Binary serialization for trained models.
//
// Two on-disk generations share the "ZSSM" magic:
//
//   v1 (save_parameters / load_parameters): u32 version, u32 parameter
//   count, then per parameter { u32 name length, name bytes, i64 rows,
//   i64 cols, f32 data[rows*cols] }. A bare weight dump — the loader
//   can only bind parameters positionally, so it is *hardened* here
//   (every read bounded by the remaining file size, names and shapes
//   verified against the caller's parameter list, descriptive errors)
//   but cannot describe an architecture.
//
//   v2 (save_model / load_model): the serving checkpoint. After the
//   magic and version comes an architecture header — layer count,
//   hidden dim, input dim, vocab, embedding dim, the quantization grid
//   the trainer calibrated, and one exported pruning threshold per
//   layer (StatePruner::effective_threshold) — then the v1-style
//   parameter records under canonical names ("embed.table",
//   "layer<l>.lstm.{wx,wh,b}", "classifier.{w,b}"), then a CRC32C
//   trailer over everything before it. The loader validates the header
//   against hard sanity bounds, computes the exact byte size the
//   header implies, and refuses to allocate anything until the actual
//   file size matches — a truncated, padded or dimension-forged file
//   is rejected before it can drive a multi-GB allocation or bind
//   weights to the wrong layer (tests/core/model_io_test.cc fuzzes
//   every byte-prefix truncation and header forgery).
//
// Little-endian host format — a lab artifact exchanged between the
// trainer and the serving/bench tools, not an interchange file.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/parameter.h"

namespace zss::core {

/// Architecture header of a v2 checkpoint. Everything the serving
/// stack must agree with before binding a single weight.
struct ModelSpec {
  std::uint32_t layers = 1;
  std::uint32_t hidden = 0;
  /// Layer-0 input width: embed_dim when an embedding is present,
  /// vocab (one-hot) otherwise. Recorded explicitly so a forged header
  /// cannot make the loader and the engine disagree silently.
  std::uint32_t input_dim = 0;
  std::uint32_t vocab = 0;
  std::uint32_t embed_dim = 0;  // 0 = one-hot input, no embedding
  /// 1 when the trainer recorded the int8 quantization grid below.
  /// Serving with --quant against a checkpoint that records none must
  /// fail closed (tools/zss_serve.cc).
  std::uint32_t has_quant_grid = 0;
  float quant_pre_clip = 0.0f;
  std::uint32_t quant_c_clip = 0;
  /// Per-layer fixed pruning threshold (size == layers) — the trained
  /// model's effective T, exported via StatePruner::effective_threshold.
  std::vector<float> thresholds;
};

/// A v2 checkpoint materialized into live modules, ready to serve.
struct LoadedModel {
  ModelSpec spec;
  std::vector<std::unique_ptr<nn::LstmCell>> cells;  // spec.layers entries
  std::unique_ptr<nn::Embedding> embedding;          // null when one-hot
  std::unique_ptr<nn::Linear> classifier;            // hidden -> vocab
};

/// Writes parameter values (not gradients) in the v1 format. Returns
/// false on I/O error.
bool save_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params);

/// Loads a v1 file into the given parameters. Every read is bounded by
/// the remaining file size; the stored name and shape of each record
/// must match the caller's parameter (names are compared when the
/// caller's parameter has one). Returns false with a descriptive
/// `error` on any mismatch, truncation or I/O failure.
bool load_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params,
                     std::string* error = nullptr);

/// Writes a v2 checkpoint. `params` must match the canonical list the
/// spec implies — same names, same shapes, same order (save refuses to
/// write a checkpoint load_model would reject). Returns false with
/// `error` on mismatch or I/O failure.
bool save_model(const std::string& path, const ModelSpec& spec,
                std::span<nn::Parameter* const> params,
                std::string* error = nullptr);

/// Loads a v2 checkpoint: header sanity-checked against hard bounds,
/// file size verified to equal exactly what the header implies (before
/// any allocation), CRC32C trailer verified, every parameter bound by
/// name+shape. On success `out` holds freshly built modules. Returns
/// false with a descriptive `error` otherwise; `out` is unspecified.
bool load_model(const std::string& path, LoadedModel& out,
                std::string* error = nullptr);

/// The canonical parameter names/shapes of a spec, in file order —
/// exposed so the trainer can rename its parameters onto the canon and
/// tests can forge near-miss checkpoints.
struct ExpectedParam {
  std::string name;
  num::Index rows = 0;
  num::Index cols = 0;
};
std::vector<ExpectedParam> expected_parameters(const ModelSpec& spec);

}  // namespace zss::core
