// Minimal binary serialization for trained models.
//
// Format: magic "ZSSM", u32 version, u32 parameter count, then for each
// parameter { u32 name length, name bytes, i64 rows, i64 cols, float
// data[rows*cols] }. Little-endian host format — this is a lab artifact
// exchanged between the trainer and the benches, not an interchange file.
#pragma once

#include <span>
#include <string>

#include "nn/parameter.h"

namespace zss::core {

/// Writes parameter values (not gradients). Returns false on I/O error.
bool save_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params);

/// Loads values into the given parameters; shapes and order must match
/// what was saved. Returns false on I/O or shape mismatch.
bool load_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params);

}  // namespace zss::core
