// Pruned-state LSTM sequence classifier (sequential-image task, §II-B.3).
//
// Pixels are fed one per timestep in scanline order; a softmax classifier
// reads the final hidden state. d_h = 100 in the paper.
#pragma once

#include <vector>

#include "core/state_pruner.h"
#include "data/batcher.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/optimizer.h"
#include "num/rng.h"
#include "sparse/sparsity_report.h"

namespace zss::core {

struct ClassifierConfig {
  num::Index classes = 10;
  num::Index hidden = 100;
  PrunerConfig pruner;
  std::uint64_t seed = 7;
};

struct ClassifierEval {
  double error_rate_percent = 0.0;
  double mean_nll = 0.0;
  double state_sparsity = 0.0;
};

class PrunedLstmClassifier {
 public:
  explicit PrunedLstmClassifier(const ClassifierConfig& config);

  const ClassifierConfig& config() const { return config_; }

  /// One minibatch update (full BPTT over the scanline). Returns the
  /// batch mean NLL.
  double train_batch(const data::ImageBatch& batch, nn::Optimizer& opt,
                     float clip_norm);

  ClassifierEval evaluate(const num::Matrix& images,
                          std::span<const num::Index> labels);

  /// Runs inference over `images`, recording every stored pruned state
  /// (for Fig. 7 style measurements). Rows of `images` form batch lanes.
  void collect_states(const num::Matrix& images,
                      sparse::SparsityMeter& meter,
                      std::vector<num::Matrix>* states = nullptr);

  std::vector<nn::Parameter*> parameters();
  void set_pruner(const PrunerConfig& config) { pruner_ = StatePruner(config); }
  nn::LstmCell& cell() { return cell_; }
  nn::Linear& classifier() { return classifier_; }

 private:
  ClassifierConfig config_;
  num::Rng rng_;
  nn::LstmCell cell_;      // input dim 1 (one pixel per step)
  nn::Linear classifier_;  // hidden -> classes
  StatePruner pruner_;
};

}  // namespace zss::core
