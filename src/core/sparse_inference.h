// Sparse-state LSTM inference engine (software counterpart of the
// accelerator's skip logic).
//
// At inference the stored state is pruned, so the recurrent matvec
// Wh h^p_{t-1} only needs the weight columns of non-zero elements. This
// engine computes exactly that: at batch 1 it encodes the state with
// the paper's offset encoder and accumulates the packed weight row of
// every kept position (see nn/packed_weights.h); at batch > 1 it
// encodes per lane (sparse::LaneEncodedState) and accumulates each
// lane's own kept rows (num::sparse_accum_rows_multi), so the skipped
// work scales with per-lane sparsity instead of collapsing to the
// batch intersection (1 - s^B, Fig. 7). Effectual vs. skipped MACs are
// counted so the algorithmic speedup bound of Figs. 8-9 can be measured
// in software before touching the cycle model — and, since the packed
// rows are contiguous, the wall-clock speedup is real too
// (bench/bench_sparse_vs_dense.cc).
//
// Contracts:
//  * step() and step_dense() produce bit-for-bit identical states: both
//    accumulate each pre-activation element in ascending state-position
//    order through num::madd, and skipped terms are exact IEEE
//    identities (madd(0, w, acc) == acc).
//  * step() performs zero heap allocations once warm: every temporary
//    lives in the engine's Workspace or in buffers reserved up front
//    (workspace().allocation_count() is the instrument tests use);
//    reserve(max_batch) reaches that steady state before the first step.
//  * The engine never owns recurrent state: h and c are caller-owned and
//    bound per call by reference, so a serving layer swaps a session's
//    state in and out of a step without copying a single element (the
//    batch-of-one path of serve::EngineShard passes the session's own
//    matrices straight through).
//  * With QuantConfig::enabled the same entry points run an int8
//    datapath end to end: int8 weights/state, i32 accumulation, LUT
//    activations (quant/lut_nonlinear.h), integer cell update. The
//    step() == step_dense() bit-identity still holds — i32 accumulation
//    wraps mod 2^32, so any summation order matches and skipped zero
//    products are exact identities (docs/exactness.md "int8"). h and c
//    stay caller-owned fp32 matrices whose values lie exactly on the
//    1/127 state grid.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "nn/packed_weights.h"
#include "num/matrix.h"
#include "num/workspace.h"
#include "quant/lut_nonlinear.h"
#include "sparse/encoding.h"

namespace zss::core {

/// Selects the engine's quantized (int8) step mode and fixes its grids.
/// Everything here is decided at construction time — no data-dependent
/// scale ever enters a step, which is what makes the quantized path
/// deterministic across batch compositions and shard counts
/// (docs/exactness.md "int8").
struct QuantConfig {
  /// Off by default: the engine runs the fp32 0-ULP path.
  bool enabled = false;
  /// Pre-activation clip (real units) mapped onto the int8 LUT input
  /// grid pre_clip/127. LSTM gates saturate well inside |pre| = 8.
  float pre_clip = 8.0f;
  /// Cell-state clip: c is kept on the 1/127 grid in [-c_clip, c_clip].
  int c_clip = 8;

  /// The default-calibrated int8 mode (the one the benches and the
  /// serving --quant flag use).
  static QuantConfig int8() {
    QuantConfig q;
    q.enabled = true;
    return q;
  }
};

/// Snapshot of what the *most recent* step()/step_dense() call did.
/// Unlike InferenceStats this never accumulates, so a serving layer can
/// use it as a per-batch feedback signal without bookkeeping stats
/// deltas.
struct StepStats {
  num::Index batch = 0;           // rows of the step's state matrices
  num::Index kept_positions = 0;  // positions kept by >= 1 lane (dense: dh)
  num::Index positions = 0;       // dh
  /// Kept positions summed over lanes — the per-lane effectual work of
  /// the batched skip path (num::sparse_accum_rows_multi accumulates
  /// exactly this many packed rows). At B = 1 equals kept_positions;
  /// dense steps report batch * positions.
  num::Index lane_kept_positions = 0;
  /// Per-element zero fraction of the state *stored* by this step (the
  /// pruner's report). With the per-lane skip path this is also the
  /// sparsity the *next* step will exploit at any batch size — the
  /// batch-intersection collapse (kept ~= 1 - s^B) no longer applies.
  double lane_sparsity = 0.0;

  /// Union sparsity: fraction of positions zero in EVERY lane — what a
  /// batch-intersecting skip (the paper's Fig. 5(d) encoder) would have
  /// seen this step. Reported for comparison against the per-lane path.
  double observed_sparsity() const {
    return positions == 0 ? 0.0
                          : 1.0 - static_cast<double>(kept_positions) /
                                      static_cast<double>(positions);
  }

  /// Per-lane sparsity the skip logic actually exploited this step.
  double observed_lane_sparsity() const {
    const num::Index total = batch * positions;
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(lane_kept_positions) /
                                  static_cast<double>(total);
  }
};

/// Cumulative counters over every step since construction or the last
/// reset_stats(). Callers that reuse one engine across measurement
/// epochs (benches, the serving layer between batcher epochs) must call
/// SparseLstmEngine::reset_stats() at each epoch boundary — the
/// counters deliberately never reset themselves.
struct InferenceStats {
  num::Index steps = 0;
  num::Index state_macs_total = 0;      // dense cost of Wh h per step
  num::Index state_macs_effectual = 0;  // after per-lane skipping
  num::Index input_macs = 0;            // Wx x cost (never skipped)
  num::Index kept_positions = 0;        // union kept (>= 1 lane non-zero)
  num::Index positions = 0;
  num::Index lane_kept_positions = 0;   // kept summed over lanes
  num::Index lane_positions = 0;        // batch * dh summed over steps

  /// Upper bound on the matvec speedup from skipping (state part only).
  /// An all-zero state skipped *everything*, so the bound is the entire
  /// dense cost — not zero (which would read as "no speedup").
  double state_speedup() const {
    if (state_macs_effectual == 0) {
      return state_macs_total == 0
                 ? 0.0
                 : static_cast<double>(state_macs_total);
    }
    return static_cast<double>(state_macs_total) /
           static_cast<double>(state_macs_effectual);
  }

  /// Mean batch-intersected (union) sparsity: what a batch-intersecting
  /// skip would have exploited. The per-lane path reports it alongside
  /// observed_lane_sparsity() so the Fig. 7 collapse stays measurable.
  double observed_sparsity() const {
    return positions == 0 ? 0.0
                          : 1.0 - static_cast<double>(kept_positions) /
                                      static_cast<double>(positions);
  }

  /// Mean per-lane sparsity the skip logic actually exploited — tracks
  /// the pruner's per-lane target at any batch size.
  double observed_lane_sparsity() const {
    return lane_positions == 0
               ? 0.0
               : 1.0 - static_cast<double>(lane_kept_positions) /
                           static_cast<double>(lane_positions);
  }

  void reset() { *this = InferenceStats{}; }
};

class SparseLstmEngine {
 public:
  /// Borrows the trained cell; the caller keeps it alive. The pruner
  /// determines which state elements are stored as zero. Packs the
  /// cell's weights into the cache-aware transposed layout on
  /// construction (re-construct the engine if the weights change).
  SparseLstmEngine(const nn::LstmCell& cell, const StatePruner& pruner,
                   sparse::EncoderConfig encoder = {},
                   QuantConfig quant = {});

  /// One timestep over a batch. `h` and `c` are (B x dh) and updated in
  /// place; `h` is stored pruned (what DRAM would hold). When `dense_h`
  /// is non-null it receives the UNpruned h of this step (resized to
  /// B x dh; no allocation once reserved) — the trained stacked model
  /// feeds the dense h to the next layer and the classifier, pruning
  /// only what the recurrence re-reads (core/stacked_lstm.cc), so a
  /// stacked engine needs this tap to match training bit-for-bit.
  void step(const num::Matrix& x, num::Matrix& h, num::Matrix& c,
            num::Matrix* dense_h = nullptr);

  /// Reference step without skipping (same pruning, dense matvec) — the
  /// result must match step() bit-for-bit; used by tests and as the
  /// "dense model" cost baseline. `dense_h` as in step().
  void step_dense(const num::Matrix& x, num::Matrix& h, num::Matrix& c,
                  num::Matrix* dense_h = nullptr);

  /// Pre-grows every internal buffer (workspace slots, encoder stores,
  /// pruning scratch) for batches up to `max_batch`, so even the first
  /// step() is heap-allocation-free. A serving shard calls this once at
  /// construction; afterwards any batch size in [1, max_batch] reuses
  /// the same buffers (Matrix::resize within capacity never allocates).
  void reserve(num::Index max_batch);

  /// Cumulative counters (see InferenceStats). Accumulate until
  /// reset_stats(); callers own the epoch boundaries.
  const InferenceStats& stats() const { return stats_; }

  /// Zeroes the cumulative stats(). Call at measurement-epoch
  /// boundaries (a bench config, a batcher epoch); last_step_stats() is
  /// unaffected — it always describes the most recent step.
  void reset_stats() { stats_.reset(); }

  /// What the most recent step()/step_dense() call did (never
  /// accumulates). Zero-initialized before the first step.
  const StepStats& last_step_stats() const { return last_; }

  const nn::PackedLstmWeights& packed_weights() const { return packed_; }

  /// True when the engine was constructed with QuantConfig::enabled:
  /// step()/step_dense() run the int8 datapath (docs/exactness.md).
  bool quantized() const { return q_.has_value(); }

  const QuantConfig& quant_config() const { return quant_; }

  /// The packed int8 weights of the quantized mode; null when the
  /// engine runs the fp32 path.
  const nn::PackedLstmWeightsI8* packed_weights_i8() const {
    return q_ ? &q_->weights : nullptr;
  }

  /// Scratch arena used by step()/step_dense(); its allocation_count()
  /// must be stable across steps once the engine is warm.
  const num::Workspace& workspace() const { return ws_; }

 private:
  void compute_input_path(const num::Matrix& x, num::Matrix& pre);
  void finish_step(num::Matrix& pre, const num::Matrix& c_prev,
                   num::Matrix& h, num::Matrix& c, num::Matrix* dense_h);

  /// Everything the int8 step mode owns: packed weights, the three
  /// activation LUTs (fixed input grids, built once), and the integer
  /// twins of the workspace/encoder buffers (the fp32 Workspace is
  /// float-only by design, so the int buffers live here and are grown
  /// by reserve()).
  struct QuantState {
    QuantState(const nn::LstmCell& cell, const QuantConfig& cfg);

    nn::PackedLstmWeightsI8 weights;
    quant::NonlinearLut sigmoid;   // f/i/o gates, input grid pre_clip/127
    quant::NonlinearLut tanh_pre;  // g gate, same input grid
    quant::NonlinearLut tanh_c;    // cell output, input grid c_clip/127
    /// i32 pre-activation -> int8 LUT input: multiply by
    /// weight_scale/pre_clip. double — an i32 accumulator exceeds the
    /// float mantissa, and the requantize must be exact-deterministic.
    double acc_to_pre = 0.0;
    num::MatrixI8 xq;    // quantized input, (B x dx)
    num::MatrixI8 hq;    // quantized state, (B x dh)
    num::MatrixI32 pre;    // i32 pre-activations, (B x 4dh)
    num::MatrixI32 pre_h;  // state-path partial, (B x 4dh)
    sparse::EncodedState<std::int8_t> enc;        // B == 1 skip path
    sparse::LaneEncodedState<std::int8_t> lanes;  // B > 1 skip path
  };

  void step_quant(const num::Matrix& x, num::Matrix& h, num::Matrix& c,
                  bool dense, num::Matrix* dense_h);
  void finish_step_quant(num::Index batch, num::Matrix& h, num::Matrix& c,
                         num::Matrix* dense_h);

  enum Slot : std::size_t { kPre, kPreH };

  const nn::LstmCell* cell_;
  const StatePruner* pruner_;
  sparse::EncoderConfig encoder_;
  QuantConfig quant_;
  std::optional<QuantState> q_;  // engaged iff quant_.enabled
  InferenceStats stats_;
  StepStats last_;
  nn::PackedLstmWeights packed_;
  num::Workspace ws_;
  sparse::EncodedState<float> enc_;        // reused B == 1 encoder output
  sparse::LaneEncodedState<float> lanes_;  // reused B > 1 encoder output
  std::vector<num::Index> positions_;      // absolute kept positions (B == 1)
  std::vector<float> prune_scratch_;       // quantile scratch for pruning
  num::Index reserved_batch_ = 0;          // capacity the buffers cover
};

}  // namespace zss::core
