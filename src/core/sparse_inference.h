// Sparse-state LSTM inference engine (software counterpart of the
// accelerator's skip logic).
//
// At inference the stored state is pruned, so the recurrent matvec
// Wh h^p_{t-1} only needs the weight columns of non-zero elements. This
// engine computes exactly that: it encodes the state with the paper's
// offset encoder (batch-intersected when batch > 1) and accumulates the
// packed weight row of every kept position (see nn/packed_weights.h),
// counting effectual vs. skipped MACs so the algorithmic speedup bound
// of Figs. 8-9 can be measured in software before touching the cycle
// model — and, since the packed rows are contiguous, the wall-clock
// speedup is real too (bench/bench_sparse_vs_dense.cc).
//
// Contracts:
//  * step() and step_dense() produce bit-for-bit identical states: both
//    accumulate each pre-activation element in ascending state-position
//    order through num::madd, and skipped terms are exact IEEE
//    identities (madd(0, w, acc) == acc).
//  * step() performs zero heap allocations once warm: every temporary
//    lives in the engine's Workspace or in buffers reserved up front
//    (workspace().allocation_count() is the instrument tests use).
#pragma once

#include <vector>

#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "nn/packed_weights.h"
#include "num/matrix.h"
#include "num/workspace.h"
#include "sparse/encoding.h"

namespace zss::core {

struct InferenceStats {
  num::Index steps = 0;
  num::Index state_macs_total = 0;      // dense cost of Wh h per step
  num::Index state_macs_effectual = 0;  // after skipping
  num::Index input_macs = 0;            // Wx x cost (never skipped)
  num::Index kept_positions = 0;
  num::Index positions = 0;

  /// Upper bound on the matvec speedup from skipping (state part only).
  /// An all-zero state skipped *everything*, so the bound is the entire
  /// dense cost — not zero (which would read as "no speedup").
  double state_speedup() const {
    if (state_macs_effectual == 0) {
      return state_macs_total == 0
                 ? 0.0
                 : static_cast<double>(state_macs_total);
    }
    return static_cast<double>(state_macs_total) /
           static_cast<double>(state_macs_effectual);
  }

  /// Mean batch-intersected sparsity seen by the skip logic.
  double observed_sparsity() const {
    return positions == 0 ? 0.0
                          : 1.0 - static_cast<double>(kept_positions) /
                                      static_cast<double>(positions);
  }

  void reset() { *this = InferenceStats{}; }
};

class SparseLstmEngine {
 public:
  /// Borrows the trained cell; the caller keeps it alive. The pruner
  /// determines which state elements are stored as zero. Packs the
  /// cell's weights into the cache-aware transposed layout on
  /// construction (re-construct the engine if the weights change).
  SparseLstmEngine(const nn::LstmCell& cell, const StatePruner& pruner,
                   sparse::EncoderConfig encoder = {});

  /// One timestep over a batch. `h` and `c` are (B x dh) and updated in
  /// place; `h` is stored pruned (what DRAM would hold).
  void step(const num::Matrix& x, num::Matrix& h, num::Matrix& c);

  /// Reference step without skipping (same pruning, dense matvec) — the
  /// result must match step() bit-for-bit; used by tests and as the
  /// "dense model" cost baseline.
  void step_dense(const num::Matrix& x, num::Matrix& h, num::Matrix& c);

  const InferenceStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  const nn::PackedLstmWeights& packed_weights() const { return packed_; }

  /// Scratch arena used by step()/step_dense(); its allocation_count()
  /// must be stable across steps once the engine is warm.
  const num::Workspace& workspace() const { return ws_; }

 private:
  void compute_input_path(const num::Matrix& x, num::Matrix& pre);
  void finish_step(num::Matrix& pre, const num::Matrix& c_prev,
                   num::Matrix& h, num::Matrix& c);

  enum Slot : std::size_t { kPre, kPreH };

  const nn::LstmCell* cell_;
  const StatePruner* pruner_;
  sparse::EncoderConfig encoder_;
  InferenceStats stats_;
  nn::PackedLstmWeights packed_;
  num::Workspace ws_;
  sparse::EncodedState<float> enc_;       // reused encoder output
  std::vector<num::Index> positions_;     // absolute kept positions
  std::vector<float> prune_scratch_;      // quantile scratch for pruning
};

}  // namespace zss::core
