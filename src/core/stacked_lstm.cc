#include "core/stacked_lstm.h"

#include "num/kernels.h"
#include "num/loss.h"

namespace zss::core {

StackedPrunedLstmLm::StackedPrunedLstmLm(const StackedLmConfig& config)
    : config_(config),
      rng_(config.seed),
      classifier_(config.hidden, config.vocab, rng_),
      pruner_(config.pruner) {
  ZSS_EXPECTS(config.vocab > 1);
  ZSS_EXPECTS(config.layers >= 1 && config.layers <= 8);
  ZSS_EXPECTS(config.hidden > 0);
  for (num::Index l = 0; l < config.layers; ++l) {
    const num::Index in_dim = l == 0 ? config.vocab : config.hidden;
    cells_.push_back(
        std::make_unique<nn::LstmCell>(in_dim, config.hidden, rng_));
  }
  reset_state(1);
}

void StackedPrunedLstmLm::reset_state(num::Index batch) {
  h_.assign(static_cast<std::size_t>(config_.layers),
            num::Matrix(batch, config_.hidden, 0.0f));
  c_.assign(static_cast<std::size_t>(config_.layers),
            num::Matrix(batch, config_.hidden, 0.0f));
}

void StackedPrunedLstmLm::make_input(std::span<const num::Index> tokens,
                                     num::Matrix& x) const {
  const auto batch = static_cast<num::Index>(tokens.size());
  x.resize(batch, config_.vocab, 0.0f);
  for (num::Index b = 0; b < batch; ++b) {
    const num::Index t = tokens[static_cast<std::size_t>(b)];
    ZSS_EXPECTS(t >= 0 && t < config_.vocab);
    x(b, t) = 1.0f;
  }
}

double StackedPrunedLstmLm::train_window(const data::LmBatch& batch,
                                         nn::Optimizer& opt,
                                         float clip_norm) {
  const num::Index T = batch.seq_len;
  const num::Index B = batch.batch;
  const auto L = static_cast<std::size_t>(config_.layers);
  if (batch.first || h_[0].rows() != B) reset_state(B);

  auto params = parameters();
  nn::zero_grads(params);

  // caches[l][t], layer-major.
  std::vector<std::vector<nn::LstmStepCache>> caches(
      L, std::vector<nn::LstmStepCache>(static_cast<std::size_t>(T)));
  std::vector<std::vector<nn::Dropout>> dropouts(
      L, std::vector<nn::Dropout>(static_cast<std::size_t>(T),
                                  nn::Dropout(config_.inter_layer_dropout)));
  std::vector<num::Matrix> top_h(static_cast<std::size_t>(T));
  std::vector<num::Matrix> dlogits(static_cast<std::size_t>(T));

  double total_nll = 0.0;
  num::Matrix x;
  num::Matrix pruned;
  num::Matrix logits;
  for (num::Index t = 0; t < T; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    const std::span<const num::Index> tokens(
        batch.inputs.data() + t * B, static_cast<std::size_t>(B));
    make_input(tokens, x);

    num::Matrix layer_in = x;
    for (std::size_t l = 0; l < L; ++l) {
      pruner_.prune(h_[l], pruned);  // Eq. (4)-(5) per layer
      auto out = cells_[l]->forward(layer_in, pruned, c_[l], &caches[l][ti]);
      h_[l] = out.h;
      c_[l] = std::move(out.c);
      layer_in = std::move(out.h);
      if (l + 1 < L) {
        dropouts[l][ti].forward(layer_in, /*training=*/true, rng_);
      }
    }
    top_h[ti] = layer_in;
    classifier_.forward(top_h[ti], logits);
    const std::span<const num::Index> targets(
        batch.targets.data() + t * B, static_cast<std::size_t>(B));
    total_nll += num::softmax_xent(logits, targets, &dlogits[ti]);
  }

  // ---- Backward ----
  std::vector<num::Matrix> dh(L, num::Matrix(B, config_.hidden, 0.0f));
  std::vector<num::Matrix> dc(L, num::Matrix(B, config_.hidden, 0.0f));
  const float step_scale = 1.0f / static_cast<float>(T);
  for (num::Index t = T - 1; t >= 0; --t) {
    const auto ti = static_cast<std::size_t>(t);
    num::scale(dlogits[ti].flat(), step_scale);
    num::Matrix d_top;
    classifier_.backward(top_h[ti], dlogits[ti], d_top);

    // d_top flows into the top layer's h; deeper layers receive the dx
    // of the layer above (through the inter-layer dropout mask).
    num::Matrix d_from_above = std::move(d_top);
    for (std::size_t l = L; l-- > 0;) {
      num::axpy(1.0f, d_from_above.flat(), dh[l].flat());
      auto grads = cells_[l]->backward(caches[l][ti], dh[l], dc[l]);
      dh[l] = std::move(grads.dh_prev);  // STE across the prune
      dc[l] = std::move(grads.dc_prev);
      if (l > 0) {
        dropouts[l - 1][ti].backward(grads.dx);
        d_from_above = std::move(grads.dx);
      }
    }
  }

  if (clip_norm > 0.0f) nn::clip_grad_norm(params, clip_norm);
  opt.step(params);
  return total_nll / static_cast<double>(T);
}

StackedEval StackedPrunedLstmLm::evaluate(std::span<const num::Index> stream,
                                          num::Index batch,
                                          num::Index seq_len) {
  data::LmBatcher batcher(stream, batch, seq_len);
  reset_state(batch);
  const auto L = static_cast<std::size_t>(config_.layers);

  double nll_sum = 0.0;
  std::vector<double> sparsity_sum(L, 0.0);
  num::Index steps = 0;
  num::Matrix x;
  num::Matrix pruned;
  num::Matrix logits;
  for (num::Index w = 0; w < batcher.num_windows(); ++w) {
    const data::LmBatch b = batcher.window(w);
    for (num::Index t = 0; t < b.seq_len; ++t) {
      const std::span<const num::Index> tokens(
          b.inputs.data() + t * batch, static_cast<std::size_t>(batch));
      make_input(tokens, x);
      // In-place stepping: each layer's state matrices are updated where
      // they live (c aliases c_prev, which forward() permits), so the
      // whole evaluation loop reuses the same buffers every step.
      const num::Matrix* layer_in = &x;
      for (std::size_t l = 0; l < L; ++l) {
        sparsity_sum[l] += pruner_.prune(h_[l], pruned);
        cells_[l]->forward(*layer_in, pruned, c_[l], nullptr, h_[l], c_[l]);
        layer_in = &h_[l];
      }
      classifier_.forward(*layer_in, logits);
      const std::span<const num::Index> targets(
          b.targets.data() + t * batch, static_cast<std::size_t>(batch));
      nll_sum += num::softmax_xent(logits, targets, nullptr);
      ++steps;
    }
  }
  ZSS_ASSERT(steps > 0);
  StackedEval eval;
  eval.mean_nll = nll_sum / static_cast<double>(steps);
  eval.bpc = num::bpc_from_nll(eval.mean_nll);
  eval.layer_sparsity.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    eval.layer_sparsity[l] = sparsity_sum[l] / static_cast<double>(steps);
  }
  return eval;
}

void StackedPrunedLstmLm::collect_states(
    std::span<const num::Index> stream, num::Index batch,
    num::Index max_steps, std::span<sparse::SparsityMeter> meters) {
  ZSS_EXPECTS(static_cast<num::Index>(meters.size()) == config_.layers);
  data::LmBatcher batcher(stream, batch, /*seq_len=*/1);
  reset_state(batch);
  const num::Index steps = std::min(max_steps, batcher.num_windows());
  const auto L = static_cast<std::size_t>(config_.layers);

  num::Matrix x;
  num::Matrix pruned;
  for (num::Index t = 0; t < steps; ++t) {
    const data::LmBatch b = batcher.window(t);
    make_input(std::span<const num::Index>(b.inputs.data(),
                                           static_cast<std::size_t>(batch)),
               x);
    const num::Matrix* layer_in = &x;
    num::Matrix stored;
    for (std::size_t l = 0; l < L; ++l) {
      pruner_.prune(h_[l], pruned);
      cells_[l]->forward(*layer_in, pruned, c_[l], nullptr, h_[l], c_[l]);
      layer_in = &h_[l];
      pruner_.prune(h_[l], stored);
      meters[l].observe(stored);
    }
  }
}

std::vector<float> StackedPrunedLstmLm::calibrate_thresholds(
    std::span<const num::Index> stream, num::Index batch,
    num::Index max_steps) {
  data::LmBatcher batcher(stream, batch, /*seq_len=*/1);
  reset_state(batch);
  const num::Index steps = std::min(max_steps, batcher.num_windows());
  ZSS_EXPECTS(steps > 0);
  const auto L = static_cast<std::size_t>(config_.layers);

  std::vector<double> sum(L, 0.0);
  num::Matrix x;
  num::Matrix pruned;
  for (num::Index t = 0; t < steps; ++t) {
    const data::LmBatch b = batcher.window(t);
    make_input(std::span<const num::Index>(b.inputs.data(),
                                           static_cast<std::size_t>(batch)),
               x);
    const num::Matrix* layer_in = &x;
    for (std::size_t l = 0; l < L; ++l) {
      pruner_.prune(h_[l], pruned);
      cells_[l]->forward(*layer_in, pruned, c_[l], nullptr, h_[l], c_[l]);
      layer_in = &h_[l];
      sum[l] += pruner_.effective_threshold(h_[l]);
    }
  }
  std::vector<float> thresholds(L);
  for (std::size_t l = 0; l < L; ++l) {
    thresholds[l] = static_cast<float>(sum[l] / static_cast<double>(steps));
  }
  return thresholds;
}

std::vector<nn::Parameter*> StackedPrunedLstmLm::parameters() {
  std::vector<nn::Parameter*> params;
  for (auto& cell : cells_) {
    for (auto* p : cell->parameters()) params.push_back(p);
  }
  for (auto* p : classifier_.parameters()) params.push_back(p);
  return params;
}

}  // namespace zss::core
