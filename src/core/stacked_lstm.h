// Multi-layer pruned-state LSTM language model — an extension beyond the
// paper's single-layer evaluation. Each layer's *recurrent* input is
// pruned exactly as in Eq. (4)-(5); the feed-forward connection between
// layers stays dense (with optional dropout), mirroring how stacked
// LSTMs are normally regularized. Every layer's stored state is
// skip-encodable, so the accelerator model applies per layer unchanged.
#pragma once

#include <memory>
#include <vector>

#include "core/state_pruner.h"
#include "data/batcher.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/optimizer.h"
#include "num/rng.h"
#include "sparse/sparsity_report.h"

namespace zss::core {

struct StackedLmConfig {
  num::Index vocab = 50;
  num::Index layers = 2;
  num::Index hidden = 64;
  double inter_layer_dropout = 0.0;
  PrunerConfig pruner;
  std::uint64_t seed = 99;
};

struct StackedEval {
  double mean_nll = 0.0;
  double bpc = 0.0;
  /// Mean pruned fraction per layer (size == layers).
  std::vector<double> layer_sparsity;
};

class StackedPrunedLstmLm {
 public:
  explicit StackedPrunedLstmLm(const StackedLmConfig& config);

  const StackedLmConfig& config() const { return config_; }

  /// One BPTT window across all layers; returns mean NLL per token.
  double train_window(const data::LmBatch& batch, nn::Optimizer& opt,
                      float clip_norm);

  StackedEval evaluate(std::span<const num::Index> stream, num::Index batch,
                       num::Index seq_len);

  /// Records every layer's stored (pruned) state; meters[i] receives
  /// layer i's states. meters.size() must equal layers.
  void collect_states(std::span<const num::Index> stream, num::Index batch,
                      num::Index max_steps,
                      std::span<sparse::SparsityMeter> meters);

  /// Per-layer mean StatePruner::effective_threshold over a forward run
  /// on `stream` — the fixed T a checkpoint records so serving can
  /// reproduce a target-sparsity training run with the deterministic
  /// fixed-threshold pruner (the serving engine rejects data-dependent
  /// thresholds). For a fixed-threshold pruner this returns the
  /// configured T for every layer exactly.
  std::vector<float> calibrate_thresholds(std::span<const num::Index> stream,
                                          num::Index batch,
                                          num::Index max_steps);

  std::vector<nn::Parameter*> parameters();

  nn::LstmCell& cell(num::Index layer) { return *cells_[static_cast<std::size_t>(layer)]; }
  void set_pruner(const PrunerConfig& config) { pruner_ = StatePruner(config); }

  void reset_state(num::Index batch);

 private:
  void make_input(std::span<const num::Index> tokens, num::Matrix& x) const;

  StackedLmConfig config_;
  num::Rng rng_;
  std::vector<std::unique_ptr<nn::LstmCell>> cells_;
  nn::Linear classifier_;
  StatePruner pruner_;

  std::vector<num::Matrix> h_;  // per layer
  std::vector<num::Matrix> c_;
};

}  // namespace zss::core
