#include "core/classifier_model.h"

#include "num/kernels.h"
#include "num/loss.h"

namespace zss::core {

PrunedLstmClassifier::PrunedLstmClassifier(const ClassifierConfig& config)
    : config_(config),
      rng_(config.seed),
      cell_(/*input_dim=*/1, config.hidden, rng_),
      classifier_(config.hidden, config.classes, rng_),
      pruner_(config.pruner) {
  ZSS_EXPECTS(config.classes > 1 && config.hidden > 0);
}

double PrunedLstmClassifier::train_batch(const data::ImageBatch& batch,
                                         nn::Optimizer& opt,
                                         float clip_norm) {
  const num::Index B = batch.images.rows();
  const num::Index T = batch.images.cols();
  ZSS_EXPECTS(B > 0 && T > 0);

  auto params = parameters();
  nn::zero_grads(params);

  std::vector<nn::LstmStepCache> caches(static_cast<std::size_t>(T));
  num::Matrix h(B, config_.hidden, 0.0f);
  num::Matrix c(B, config_.hidden, 0.0f);
  num::Matrix x(B, 1);
  num::Matrix pruned;
  for (num::Index t = 0; t < T; ++t) {
    for (num::Index b = 0; b < B; ++b) x(b, 0) = batch.images(b, t);
    pruner_.prune(h, pruned);
    auto out = cell_.forward(x, pruned, c, &caches[static_cast<std::size_t>(t)]);
    h = std::move(out.h);
    c = std::move(out.c);
  }

  num::Matrix logits;
  classifier_.forward(h, logits);
  num::Matrix dlogits;
  const double nll = num::softmax_xent(
      logits, std::span<const num::Index>(batch.labels), &dlogits);

  num::Matrix dh;
  classifier_.backward(h, dlogits, dh);
  num::Matrix dc(B, config_.hidden, 0.0f);
  for (num::Index t = T - 1; t >= 0; --t) {
    auto grads = cell_.backward(caches[static_cast<std::size_t>(t)], dh, dc);
    dh = std::move(grads.dh_prev);  // straight-through across the prune
    dc = std::move(grads.dc_prev);
  }

  if (clip_norm > 0.0f) nn::clip_grad_norm(params, clip_norm);
  opt.step(params);
  return nll;
}

ClassifierEval PrunedLstmClassifier::evaluate(
    const num::Matrix& images, std::span<const num::Index> labels) {
  const num::Index B = images.rows();
  const num::Index T = images.cols();
  ZSS_EXPECTS(B == static_cast<num::Index>(labels.size()));

  num::Matrix h(B, config_.hidden, 0.0f);
  num::Matrix c(B, config_.hidden, 0.0f);
  num::Matrix x(B, 1);
  num::Matrix pruned;
  double sparsity_sum = 0.0;
  for (num::Index t = 0; t < T; ++t) {
    for (num::Index b = 0; b < B; ++b) x(b, 0) = images(b, t);
    sparsity_sum += pruner_.prune(h, pruned);
    auto out = cell_.forward(x, pruned, c, nullptr);
    h = std::move(out.h);
    c = std::move(out.c);
  }

  num::Matrix logits;
  classifier_.forward(h, logits);
  ClassifierEval eval;
  eval.mean_nll = num::softmax_xent(logits, labels, nullptr);
  eval.error_rate_percent = num::error_rate_percent(logits, labels);
  eval.state_sparsity = sparsity_sum / static_cast<double>(T);
  return eval;
}

void PrunedLstmClassifier::collect_states(const num::Matrix& images,
                                          sparse::SparsityMeter& meter,
                                          std::vector<num::Matrix>* states) {
  const num::Index B = images.rows();
  const num::Index T = images.cols();
  num::Matrix h(B, config_.hidden, 0.0f);
  num::Matrix c(B, config_.hidden, 0.0f);
  num::Matrix x(B, 1);
  num::Matrix pruned;
  for (num::Index t = 0; t < T; ++t) {
    for (num::Index b = 0; b < B; ++b) x(b, 0) = images(b, t);
    pruner_.prune(h, pruned);
    auto out = cell_.forward(x, pruned, c, nullptr);
    h = std::move(out.h);
    c = std::move(out.c);
    num::Matrix stored;
    pruner_.prune(h, stored);
    meter.observe(stored);
    if (states != nullptr) states->push_back(stored);
  }
}

std::vector<nn::Parameter*> PrunedLstmClassifier::parameters() {
  std::vector<nn::Parameter*> params;
  for (auto* p : cell_.parameters()) params.push_back(p);
  for (auto* p : classifier_.parameters()) params.push_back(p);
  return params;
}

}  // namespace zss::core
