#include "core/quantized_reference.h"

#include <cmath>

#include "nn/packed_weights.h"  // kStateScale
#include "num/kernels.h"        // madd_i8 / add_i32 (the contract's ops)

namespace zss::core {

namespace {

// The twin's own copies of the quantizer formulas, written out longhand
// so a bug in quant/quantize.cc cannot hide by being shared.
std::int8_t q8(float x, float scale) {
  const float q = std::nearbyint(x / scale);
  if (q >= 127.0f) return 127;
  if (q <= -127.0f) return -127;
  return static_cast<std::int8_t>(q);
}

std::int8_t requant(std::int32_t v, double to_pre) {
  const double q = std::nearbyint(static_cast<double>(v) * to_pre);
  if (q >= 127.0) return 127;
  if (q <= -127.0) return -127;
  return static_cast<std::int8_t>(q);
}

std::int32_t rdiv(std::int32_t p, std::int32_t den) {
  return p >= 0 ? (p + den / 2) / den : -((-p + den / 2) / den);
}

std::int32_t clampi(std::int32_t v, std::int32_t lo, std::int32_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

float max_abs(const num::Matrix& m) {
  float mx = 0.0f;
  for (float v : m.flat()) {
    const float a = std::fabs(v);
    if (a > mx) mx = a;
  }
  return mx;
}

}  // namespace

QuantizedLstmReference::QuantizedLstmReference(const nn::LstmCell& cell,
                                               const StatePruner& pruner,
                                               QuantConfig cfg)
    : cell_(&cell),
      pruner_(&pruner),
      cfg_(cfg),
      sigmoid_(quant::Nonlinearity::kSigmoid,
               quant::QuantParams{cfg.pre_clip / 127.0f}),
      tanh_pre_(quant::Nonlinearity::kTanh,
                quant::QuantParams{cfg.pre_clip / 127.0f}),
      tanh_c_(quant::Nonlinearity::kTanh,
              quant::QuantParams{static_cast<float>(cfg.c_clip) / 127.0f}) {
  const num::Matrix& wx = cell.wx().value;
  const num::Matrix& wh = cell.wh().value;
  // Shared symmetric scale over BOTH weight matrices: max|w| maps to
  // 127 (a zero cell gets scale 1, like quant::choose_scale).
  const float mx = std::max(max_abs(wx), max_abs(wh));
  wscale_ = mx == 0.0f ? 1.0f : mx / 127.0f;
  wxq_.reshape(wx.rows(), wx.cols());
  for (num::Index r = 0; r < wx.rows(); ++r) {
    for (num::Index j = 0; j < wx.cols(); ++j) {
      wxq_(r, j) = q8(wx(r, j), wscale_);
    }
  }
  whq_.reshape(wh.rows(), wh.cols());
  for (num::Index r = 0; r < wh.rows(); ++r) {
    for (num::Index j = 0; j < wh.cols(); ++j) {
      whq_(r, j) = q8(wh(r, j), wscale_);
    }
  }
  const auto b = cell.bias().value.flat();
  bias_q_.resize(static_cast<num::Index>(b.size()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    bias_q_[static_cast<num::Index>(i)] = static_cast<std::int32_t>(
        std::nearbyint(static_cast<double>(b[i]) * 127.0 /
                       static_cast<double>(wscale_)));
  }
  acc_to_pre_ = static_cast<double>(wscale_) /
                static_cast<double>(cfg_.pre_clip);
}

void QuantizedLstmReference::step(const num::Matrix& x, num::Matrix& h,
                                  num::Matrix& c) {
  const num::Index B = x.rows();
  const num::Index dx = cell_->input_dim();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(x.cols() == dx);
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);
  const float grid = nn::PackedLstmWeightsI8::kStateScale;
  const std::int32_t c_clip = static_cast<std::int32_t>(cfg_.c_clip);
  const std::int32_t c_lim = 127 * c_clip;
  xq_.resize(static_cast<std::size_t>(dx));
  hq_.resize(static_cast<std::size_t>(dh));

  for (num::Index r = 0; r < B; ++r) {
    for (num::Index j = 0; j < dx; ++j) {
      xq_[static_cast<std::size_t>(j)] = q8(x(r, j), grid);
    }
    for (num::Index j = 0; j < dh; ++j) {
      hq_[static_cast<std::size_t>(j)] = q8(h(r, j), grid);
    }
    for (num::Index j = 0; j < dh; ++j) {
      // One full serial dot per gate row: bias, then Wx x, then Wh h,
      // all on the shared accumulator scale with the contract's
      // wrapping MAC.
      std::int32_t pre[4];
      for (int gate = 0; gate < 4; ++gate) {
        const num::Index gr = static_cast<num::Index>(gate) * dh + j;
        std::int32_t acc = bias_q_[gr];
        const std::int8_t* wxr = wxq_.data() + gr * dx;
        for (num::Index k = 0; k < dx; ++k) {
          acc = num::madd_i8(wxr[k], xq_[static_cast<std::size_t>(k)], acc);
        }
        const std::int8_t* whr = whq_.data() + gr * dh;
        for (num::Index k = 0; k < dh; ++k) {
          acc = num::madd_i8(whr[k], hq_[static_cast<std::size_t>(k)], acc);
        }
        pre[gate] = acc;
      }
      const std::int8_t f = sigmoid_.apply(requant(pre[0], acc_to_pre_));
      const std::int8_t i = sigmoid_.apply(requant(pre[1], acc_to_pre_));
      const std::int8_t o = sigmoid_.apply(requant(pre[2], acc_to_pre_));
      const std::int8_t g = tanh_pre_.apply(requant(pre[3], acc_to_pre_));
      std::int32_t cq = clampi(
          static_cast<std::int32_t>(
              std::nearbyint(static_cast<double>(c(r, j)) * 127.0)),
          -c_lim, c_lim);
      cq = clampi(rdiv(static_cast<std::int32_t>(f) * cq, 127) +
                      rdiv(static_cast<std::int32_t>(i) *
                               static_cast<std::int32_t>(g),
                           127),
                  -c_lim, c_lim);
      const std::int8_t c8 = static_cast<std::int8_t>(rdiv(cq, c_clip));
      const std::int8_t tc = tanh_c_.apply(c8);
      const std::int32_t hq = rdiv(
          static_cast<std::int32_t>(o) * static_cast<std::int32_t>(tc), 127);
      // Same write-back expression as the engine: float(q) * kStateScale.
      c(r, j) = static_cast<float>(cq) * grid;
      h(r, j) = static_cast<float>(hq) * grid;
    }
  }
  pruner_->prune_inplace(h, prune_scratch_);
}

}  // namespace zss::core
