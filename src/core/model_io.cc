#include "core/model_io.h"

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "num/rng.h"
#include "store/crc32c.h"

namespace zss::core {
namespace {

constexpr char kMagic[4] = {'Z', 'S', 'S', 'M'};
constexpr std::uint32_t kVersionParams = 1;  // bare parameter dump
constexpr std::uint32_t kVersionModel = 2;   // arch header + CRC trailer

// Hard sanity bounds on the v2 architecture header. Generous for
// anything this lab trains, tight enough that a forged header cannot
// drive a pathological allocation before the size check runs.
constexpr std::uint32_t kMaxLayers = 8;
constexpr std::uint32_t kMaxHidden = 16384;
constexpr std::uint32_t kMaxVocab = 1u << 20;
constexpr std::uint32_t kMaxEmbedDim = 4096;
constexpr std::uint32_t kMaxCellClip = 1u << 20;
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxFileBytes = 1ull << 30;  // 1 GiB

// Fixed-width header fields after magic+version: layers, hidden,
// input_dim, vocab, embed_dim, has_quant_grid, quant_pre_clip,
// quant_c_clip — 8 x 4 bytes, then layers x f32 thresholds.
constexpr std::uint64_t kSpecFixedBytes = 8 * 4;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

bool write_bytes(std::FILE* f, const void* p, std::size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

bool read_bytes(std::FILE* f, void* p, std::size_t n) {
  return std::fread(p, 1, n, f) == n;
}

/// Size of the file on disk, or -1. Everything the loaders read is
/// bounded against this up front — a corrupt length field can never
/// request more than the file actually holds.
std::int64_t file_size(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long n = std::ftell(f);
  if (n < 0 || std::fseek(f, 0, SEEK_SET) != 0) return -1;
  return n;
}

/// Accumulates CRC32C over everything written, so the v2 trailer is
/// computed in one pass with the payload.
struct CrcWriter {
  std::FILE* f = nullptr;
  std::uint32_t crc = 0;
  bool ok = true;

  void put(const void* p, std::size_t n) {
    if (!ok) return;
    ok = write_bytes(f, p, n);
    crc = store::crc32c(crc, p, n);
  }
  void put_u32(std::uint32_t v) { put(&v, sizeof v); }
  void put_f32(float v) { put(&v, sizeof v); }
  void put_i64(std::int64_t v) { put(&v, sizeof v); }
};

/// Cursor over an in-memory file image; every read is bounds-checked
/// even after the total size has been validated (belt and braces).
struct Cursor {
  const unsigned char* data = nullptr;
  std::uint64_t size = 0;
  std::uint64_t pos = 0;

  std::uint64_t remaining() const { return size - pos; }
  bool take(void* out, std::uint64_t n) {
    if (n > remaining()) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool take_u32(std::uint32_t* v) { return take(v, sizeof *v); }
  bool take_f32(float* v) { return take(v, sizeof *v); }
  bool take_i64(std::int64_t* v) { return take(v, sizeof *v); }
};

bool validate_spec(const ModelSpec& s, std::string* error) {
  if (s.layers < 1 || s.layers > kMaxLayers) {
    return fail(error, "model spec: layer count " + std::to_string(s.layers) +
                           " outside [1, " + std::to_string(kMaxLayers) + "]");
  }
  if (s.hidden < 1 || s.hidden > kMaxHidden) {
    return fail(error, "model spec: hidden dim " + std::to_string(s.hidden) +
                           " outside [1, " + std::to_string(kMaxHidden) + "]");
  }
  if (s.vocab < 2 || s.vocab > kMaxVocab) {
    return fail(error, "model spec: vocab size " + std::to_string(s.vocab) +
                           " outside [2, " + std::to_string(kMaxVocab) + "]");
  }
  if (s.embed_dim > kMaxEmbedDim) {
    return fail(error,
                "model spec: embedding dim " + std::to_string(s.embed_dim) +
                    " exceeds " + std::to_string(kMaxEmbedDim));
  }
  const std::uint32_t want_input = s.embed_dim > 0 ? s.embed_dim : s.vocab;
  if (s.input_dim != want_input) {
    return fail(error, "model spec: input dim " + std::to_string(s.input_dim) +
                           " inconsistent with " +
                           (s.embed_dim > 0 ? "embedding dim "
                                            : "one-hot vocab ") +
                           std::to_string(want_input));
  }
  if (s.has_quant_grid > 1) {
    return fail(error, "model spec: has_quant_grid flag must be 0 or 1, got " +
                           std::to_string(s.has_quant_grid));
  }
  if (s.has_quant_grid == 1) {
    if (!std::isfinite(s.quant_pre_clip) || s.quant_pre_clip <= 0.0f) {
      return fail(error, "model spec: quantization pre-activation clip must "
                         "be finite and positive");
    }
    if (s.quant_c_clip < 1 || s.quant_c_clip > kMaxCellClip) {
      return fail(error, "model spec: quantization cell clip " +
                             std::to_string(s.quant_c_clip) + " outside [1, " +
                             std::to_string(kMaxCellClip) + "]");
    }
  }
  if (s.thresholds.size() != s.layers) {
    return fail(error,
                "model spec: " + std::to_string(s.thresholds.size()) +
                    " pruning thresholds for " + std::to_string(s.layers) +
                    " layers");
  }
  for (std::size_t l = 0; l < s.thresholds.size(); ++l) {
    const float t = s.thresholds[l];
    if (!std::isfinite(t) || t < 0.0f) {
      return fail(error, "model spec: layer " + std::to_string(l) +
                             " pruning threshold must be finite and >= 0");
    }
  }
  return true;
}

/// Exact byte size a valid v2 file with this spec must have. With the
/// spec bounds above this cannot overflow u64 (worst case is well under
/// 2^40), and the loader additionally caps it at kMaxFileBytes.
std::uint64_t expected_file_bytes(const ModelSpec& spec,
                                  const std::vector<ExpectedParam>& params) {
  std::uint64_t total = 4 + 4;                    // magic + version
  total += kSpecFixedBytes;                       // fixed spec fields
  total += 4ull * spec.layers;                    // thresholds
  total += 4;                                     // param count
  for (const ExpectedParam& p : params) {
    total += 4 + p.name.size() + 8 + 8;           // name_len, name, rows, cols
    total += 4ull * static_cast<std::uint64_t>(p.rows) *
             static_cast<std::uint64_t>(p.cols);  // f32 payload
  }
  total += 4;                                     // CRC32C trailer
  return total;
}

}  // namespace

std::vector<ExpectedParam> expected_parameters(const ModelSpec& spec) {
  const auto dh = static_cast<num::Index>(spec.hidden);
  const auto vocab = static_cast<num::Index>(spec.vocab);
  std::vector<ExpectedParam> out;
  out.reserve(2 + 3 * spec.layers + 2);
  if (spec.embed_dim > 0) {
    out.push_back(
        {"embed.table", vocab, static_cast<num::Index>(spec.embed_dim)});
  }
  for (std::uint32_t l = 0; l < spec.layers; ++l) {
    const num::Index in_l =
        l == 0 ? static_cast<num::Index>(spec.input_dim) : dh;
    const std::string prefix = "layer" + std::to_string(l) + ".lstm.";
    out.push_back({prefix + "wx", 4 * dh, in_l});
    out.push_back({prefix + "wh", 4 * dh, dh});
    out.push_back({prefix + "b", 1, 4 * dh});
  }
  out.push_back({"classifier.w", vocab, dh});
  out.push_back({"classifier.b", 1, vocab});
  return out;
}

bool save_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_bytes(f.get(), kMagic, 4)) return false;
  if (!write_bytes(f.get(), &kVersionParams, sizeof kVersionParams)) {
    return false;
  }
  const auto count = static_cast<std::uint32_t>(params.size());
  if (!write_bytes(f.get(), &count, sizeof count)) return false;
  for (const nn::Parameter* p : params) {
    const auto name_len = static_cast<std::uint32_t>(p->name.size());
    if (!write_bytes(f.get(), &name_len, sizeof name_len)) return false;
    if (!write_bytes(f.get(), p->name.data(), name_len)) return false;
    const std::int64_t rows = p->value.rows();
    const std::int64_t cols = p->value.cols();
    if (!write_bytes(f.get(), &rows, sizeof rows)) return false;
    if (!write_bytes(f.get(), &cols, sizeof cols)) return false;
    const auto flat = p->value.flat();
    if (!write_bytes(f.get(), flat.data(), flat.size() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

bool load_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params,
                     std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return fail(error, path + ": cannot open for reading");
  const std::int64_t total = file_size(f.get());
  if (total < 0) return fail(error, path + ": cannot determine file size");
  std::uint64_t remaining = static_cast<std::uint64_t>(total);

  char magic[4];
  if (remaining < 4 || !read_bytes(f.get(), magic, 4)) {
    return fail(error, path + ": truncated before magic");
  }
  remaining -= 4;
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return fail(error, path + ": bad magic (not a ZSSM file)");
  }
  std::uint32_t version = 0;
  if (remaining < sizeof version ||
      !read_bytes(f.get(), &version, sizeof version)) {
    return fail(error, path + ": truncated before version");
  }
  remaining -= sizeof version;
  if (version == kVersionModel) {
    return fail(error, path + ": version 2 is a full model checkpoint; "
                       "load it with load_model (zss_serve --model)");
  }
  if (version != kVersionParams) {
    return fail(error,
                path + ": unsupported format version " +
                    std::to_string(version));
  }
  std::uint32_t count = 0;
  if (remaining < sizeof count || !read_bytes(f.get(), &count, sizeof count)) {
    return fail(error, path + ": truncated before parameter count");
  }
  remaining -= sizeof count;
  if (count != params.size()) {
    return fail(error, path + ": has " + std::to_string(count) +
                           " parameters, expected " +
                           std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter* p = params[i];
    const std::string where =
        path + ": parameter " + std::to_string(i) +
        (p->name.empty() ? "" : " ('" + p->name + "')");
    std::uint32_t name_len = 0;
    if (remaining < sizeof name_len ||
        !read_bytes(f.get(), &name_len, sizeof name_len)) {
      return fail(error, where + ": truncated before name length");
    }
    remaining -= sizeof name_len;
    if (name_len > kMaxNameLen) {
      return fail(error, where + ": name length " + std::to_string(name_len) +
                             " exceeds limit " + std::to_string(kMaxNameLen));
    }
    if (name_len > remaining) {
      return fail(error, where + ": name length " + std::to_string(name_len) +
                             " exceeds remaining file size");
    }
    std::string name(name_len, '\0');
    if (!read_bytes(f.get(), name.data(), name_len)) {
      return fail(error, where + ": truncated inside name");
    }
    remaining -= name_len;
    if (!p->name.empty() && name != p->name) {
      return fail(error, where + ": file names it '" + name + "'");
    }
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    if (remaining < sizeof rows + sizeof cols ||
        !read_bytes(f.get(), &rows, sizeof rows) ||
        !read_bytes(f.get(), &cols, sizeof cols)) {
      return fail(error, where + ": truncated before shape");
    }
    remaining -= sizeof rows + sizeof cols;
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return fail(error, where + ": file shape " + std::to_string(rows) + "x" +
                             std::to_string(cols) + " != expected " +
                             std::to_string(p->value.rows()) + "x" +
                             std::to_string(p->value.cols()));
    }
    auto flat = p->value.flat();
    const std::uint64_t payload = flat.size() * sizeof(float);
    if (payload > remaining) {
      return fail(error, where + ": truncated inside data (need " +
                             std::to_string(payload) + " bytes, have " +
                             std::to_string(remaining) + ")");
    }
    if (!read_bytes(f.get(), flat.data(), payload)) {
      return fail(error, where + ": truncated inside data");
    }
    remaining -= payload;
  }
  if (remaining != 0) {
    return fail(error, path + ": " + std::to_string(remaining) +
                           " trailing bytes after last parameter");
  }
  return true;
}

bool save_model(const std::string& path, const ModelSpec& spec,
                std::span<nn::Parameter* const> params, std::string* error) {
  if (!validate_spec(spec, error)) return false;
  const std::vector<ExpectedParam> expected = expected_parameters(spec);
  if (params.size() != expected.size()) {
    return fail(error, "save_model: " + std::to_string(params.size()) +
                           " parameters, spec implies " +
                           std::to_string(expected.size()));
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const ExpectedParam& e = expected[i];
    const nn::Parameter* p = params[i];
    if (p->name != e.name) {
      return fail(error, "save_model: parameter " + std::to_string(i) +
                             " named '" + p->name + "', canon requires '" +
                             e.name + "'");
    }
    if (p->value.rows() != e.rows || p->value.cols() != e.cols) {
      return fail(error, "save_model: parameter '" + e.name + "' has shape " +
                             std::to_string(p->value.rows()) + "x" +
                             std::to_string(p->value.cols()) +
                             ", canon requires " + std::to_string(e.rows) +
                             "x" + std::to_string(e.cols));
    }
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return fail(error, path + ": cannot open for writing");
  CrcWriter w{f.get()};
  w.put(kMagic, 4);
  w.put_u32(kVersionModel);
  w.put_u32(spec.layers);
  w.put_u32(spec.hidden);
  w.put_u32(spec.input_dim);
  w.put_u32(spec.vocab);
  w.put_u32(spec.embed_dim);
  w.put_u32(spec.has_quant_grid);
  w.put_f32(spec.quant_pre_clip);
  w.put_u32(spec.quant_c_clip);
  for (float t : spec.thresholds) w.put_f32(t);
  w.put_u32(static_cast<std::uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    w.put_u32(static_cast<std::uint32_t>(p->name.size()));
    w.put(p->name.data(), p->name.size());
    w.put_i64(p->value.rows());
    w.put_i64(p->value.cols());
    const auto flat = p->value.flat();
    w.put(flat.data(), flat.size() * sizeof(float));
  }
  // Trailer: CRC over everything before it (not fed back into w.crc).
  const std::uint32_t crc = w.crc;
  if (!w.ok || !write_bytes(f.get(), &crc, sizeof crc)) {
    return fail(error, path + ": write failed");
  }
  return true;
}

bool load_model(const std::string& path, LoadedModel& out,
                std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return fail(error, path + ": cannot open for reading");
  const std::int64_t total = file_size(f.get());
  if (total < 0) return fail(error, path + ": cannot determine file size");
  const auto usize = static_cast<std::uint64_t>(total);
  if (usize > kMaxFileBytes) {
    return fail(error, path + ": " + std::to_string(usize) +
                           " bytes exceeds the " +
                           std::to_string(kMaxFileBytes) +
                           "-byte checkpoint limit");
  }
  if (usize < 4 + 4 + kSpecFixedBytes) {
    return fail(error, path + ": " + std::to_string(usize) +
                           " bytes is smaller than the fixed header");
  }

  char magic[4];
  if (!read_bytes(f.get(), magic, 4)) {
    return fail(error, path + ": read failed at magic");
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return fail(error, path + ": bad magic (not a ZSSM file)");
  }
  std::uint32_t version = 0;
  if (!read_bytes(f.get(), &version, sizeof version)) {
    return fail(error, path + ": read failed at version");
  }
  if (version == kVersionParams) {
    return fail(error, path + ": version 1 file is a bare parameter dump "
                       "with no architecture header; re-save it with "
                       "zss_train (which writes version 2 checkpoints)");
  }
  if (version != kVersionModel) {
    return fail(error,
                path + ": unsupported format version " +
                    std::to_string(version));
  }

  // Fixed spec fields. All bounds-checked before anything is sized off
  // of them.
  ModelSpec spec;
  if (!read_bytes(f.get(), &spec.layers, 4) ||
      !read_bytes(f.get(), &spec.hidden, 4) ||
      !read_bytes(f.get(), &spec.input_dim, 4) ||
      !read_bytes(f.get(), &spec.vocab, 4) ||
      !read_bytes(f.get(), &spec.embed_dim, 4) ||
      !read_bytes(f.get(), &spec.has_quant_grid, 4) ||
      !read_bytes(f.get(), &spec.quant_pre_clip, 4) ||
      !read_bytes(f.get(), &spec.quant_c_clip, 4)) {
    return fail(error, path + ": read failed inside architecture header");
  }
  // Validate everything except thresholds first: the threshold count
  // (== layers) must be trusted before reading them.
  {
    ModelSpec probe = spec;
    probe.thresholds.assign(probe.layers <= kMaxLayers ? probe.layers : 0,
                            0.0f);
    std::string why;
    if (!validate_spec(probe, &why)) {
      return fail(error, path + ": " + why);
    }
  }
  const std::uint64_t thresh_bytes = 4ull * spec.layers;
  if (usize < 4 + 4 + kSpecFixedBytes + thresh_bytes) {
    return fail(error, path + ": truncated inside per-layer thresholds");
  }
  spec.thresholds.resize(spec.layers);
  if (!read_bytes(f.get(), spec.thresholds.data(), thresh_bytes)) {
    return fail(error, path + ": read failed inside per-layer thresholds");
  }
  {
    std::string why;
    if (!validate_spec(spec, &why)) return fail(error, path + ": " + why);
  }

  // The header now fully determines the file: refuse any size mismatch
  // before allocating parameter storage.
  const std::vector<ExpectedParam> expected = expected_parameters(spec);
  const std::uint64_t want = expected_file_bytes(spec, expected);
  if (want > kMaxFileBytes) {
    return fail(error, path + ": architecture implies " +
                           std::to_string(want) + " bytes, over the " +
                           std::to_string(kMaxFileBytes) +
                           "-byte checkpoint limit");
  }
  if (usize != want) {
    return fail(error, path + ": " + std::to_string(usize) +
                           " bytes on disk but the architecture header "
                           "implies exactly " +
                           std::to_string(want) +
                           " (truncated or trailing garbage)");
  }

  // Whole-file image for the CRC check; bounded by the check above.
  std::vector<unsigned char> buf(usize);
  if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
      !read_bytes(f.get(), buf.data(), buf.size())) {
    return fail(error, path + ": read failed");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + buf.size() - 4, 4);
  const std::uint32_t actual_crc =
      store::crc32c(0, buf.data(), buf.size() - 4);
  if (stored_crc != actual_crc) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "checksum mismatch (stored %08" PRIx32 ", computed %08"
                  PRIx32 ")",
                  stored_crc, actual_crc);
    return fail(error, path + ": " + msg);
  }

  // Build the modules, then bind every stored parameter by name+shape.
  out.spec = spec;
  out.cells.clear();
  out.embedding.reset();
  out.classifier.reset();
  num::Rng init_rng(1);  // placeholder init; every value is overwritten
  std::vector<nn::Parameter*> targets;
  if (spec.embed_dim > 0) {
    out.embedding = std::make_unique<nn::Embedding>(
        static_cast<num::Index>(spec.vocab),
        static_cast<num::Index>(spec.embed_dim), init_rng);
    for (nn::Parameter* p : out.embedding->parameters()) targets.push_back(p);
  }
  for (std::uint32_t l = 0; l < spec.layers; ++l) {
    const num::Index in_l = l == 0 ? static_cast<num::Index>(spec.input_dim)
                                   : static_cast<num::Index>(spec.hidden);
    out.cells.push_back(std::make_unique<nn::LstmCell>(
        in_l, static_cast<num::Index>(spec.hidden), init_rng));
    for (nn::Parameter* p : out.cells.back()->parameters()) {
      targets.push_back(p);
    }
  }
  out.classifier = std::make_unique<nn::Linear>(
      static_cast<num::Index>(spec.hidden),
      static_cast<num::Index>(spec.vocab), init_rng);
  for (nn::Parameter* p : out.classifier->parameters()) targets.push_back(p);
  if (targets.size() != expected.size()) {
    return fail(error, path + ": internal: module parameter count " +
                           std::to_string(targets.size()) +
                           " != canonical count " +
                           std::to_string(expected.size()));
  }

  Cursor c{buf.data(), buf.size() - 4,
           4 + 4 + kSpecFixedBytes + thresh_bytes};
  std::uint32_t count = 0;
  if (!c.take_u32(&count)) {
    return fail(error, path + ": truncated before parameter count");
  }
  if (count != expected.size()) {
    return fail(error, path + ": has " + std::to_string(count) +
                           " parameters but the architecture implies " +
                           std::to_string(expected.size()));
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const ExpectedParam& e = expected[i];
    std::uint32_t name_len = 0;
    if (!c.take_u32(&name_len)) {
      return fail(error, path + ": truncated before name of '" + e.name + "'");
    }
    if (name_len != e.name.size() || name_len > c.remaining()) {
      return fail(error, path + ": parameter " + std::to_string(i) +
                             ": name length " + std::to_string(name_len) +
                             " does not match canonical name '" + e.name +
                             "'");
    }
    std::string name(name_len, '\0');
    if (!c.take(name.data(), name_len)) {
      return fail(error, path + ": truncated inside name of '" + e.name +
                             "'");
    }
    if (name != e.name) {
      return fail(error, path + ": parameter " + std::to_string(i) +
                             " named '" + name + "', canon requires '" +
                             e.name + "'");
    }
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    if (!c.take_i64(&rows) || !c.take_i64(&cols)) {
      return fail(error, path + ": truncated before shape of '" + e.name +
                             "'");
    }
    if (rows != e.rows || cols != e.cols) {
      return fail(error, path + ": parameter '" + e.name + "' has shape " +
                             std::to_string(rows) + "x" +
                             std::to_string(cols) + ", canon requires " +
                             std::to_string(e.rows) + "x" +
                             std::to_string(e.cols));
    }
    auto flat = targets[i]->value.flat();
    if (!c.take(flat.data(), flat.size() * sizeof(float))) {
      return fail(error, path + ": truncated inside data of '" + e.name +
                             "'");
    }
  }
  if (c.remaining() != 0) {
    return fail(error, path + ": " + std::to_string(c.remaining()) +
                           " unexpected bytes after last parameter");
  }
  return true;
}

}  // namespace zss::core
