#include "core/model_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace zss::core {
namespace {

constexpr char kMagic[4] = {'Z', 'S', 'S', 'M'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool write_bytes(std::FILE* f, const void* p, std::size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

bool read_bytes(std::FILE* f, void* p, std::size_t n) {
  return std::fread(p, 1, n, f) == n;
}

}  // namespace

bool save_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_bytes(f.get(), kMagic, 4)) return false;
  if (!write_bytes(f.get(), &kVersion, sizeof kVersion)) return false;
  const auto count = static_cast<std::uint32_t>(params.size());
  if (!write_bytes(f.get(), &count, sizeof count)) return false;
  for (const nn::Parameter* p : params) {
    const auto name_len = static_cast<std::uint32_t>(p->name.size());
    if (!write_bytes(f.get(), &name_len, sizeof name_len)) return false;
    if (!write_bytes(f.get(), p->name.data(), name_len)) return false;
    const std::int64_t rows = p->value.rows();
    const std::int64_t cols = p->value.cols();
    if (!write_bytes(f.get(), &rows, sizeof rows)) return false;
    if (!write_bytes(f.get(), &cols, sizeof cols)) return false;
    const auto flat = p->value.flat();
    if (!write_bytes(f.get(), flat.data(), flat.size() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

bool load_parameters(const std::string& path,
                     std::span<nn::Parameter* const> params) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  char magic[4];
  if (!read_bytes(f.get(), magic, 4)) return false;
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kMagic[i]) return false;
  }
  std::uint32_t version = 0;
  if (!read_bytes(f.get(), &version, sizeof version)) return false;
  if (version != kVersion) return false;
  std::uint32_t count = 0;
  if (!read_bytes(f.get(), &count, sizeof count)) return false;
  if (count != params.size()) return false;
  for (nn::Parameter* p : params) {
    std::uint32_t name_len = 0;
    if (!read_bytes(f.get(), &name_len, sizeof name_len)) return false;
    std::string name(name_len, '\0');
    if (!read_bytes(f.get(), name.data(), name_len)) return false;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    if (!read_bytes(f.get(), &rows, sizeof rows)) return false;
    if (!read_bytes(f.get(), &cols, sizeof cols)) return false;
    if (rows != p->value.rows() || cols != p->value.cols()) return false;
    auto flat = p->value.flat();
    if (!read_bytes(f.get(), flat.data(), flat.size() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

}  // namespace zss::core
