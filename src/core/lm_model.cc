#include "core/lm_model.h"

#include <cmath>

#include "num/activations.h"
#include "num/kernels.h"
#include "num/loss.h"

namespace zss::core {

PrunedLstmLm::PrunedLstmLm(const LmConfig& config)
    : config_(config),
      rng_(config.seed),
      cell_(config.input_dim(), config.hidden, rng_),
      classifier_(config.hidden, config.vocab, rng_),
      pruner_(config.pruner) {
  ZSS_EXPECTS(config.vocab > 1);
  ZSS_EXPECTS(config.hidden > 0);
  if (config.embed_dim > 0) {
    embedding_ =
        std::make_unique<nn::Embedding>(config.vocab, config.embed_dim, rng_);
  }
  reset_state(1);
}

void PrunedLstmLm::reset_state(num::Index batch) {
  h_.resize(batch, config_.hidden, 0.0f);
  c_.resize(batch, config_.hidden, 0.0f);
}

void PrunedLstmLm::make_input(std::span<const num::Index> tokens,
                              num::Matrix& x) const {
  const auto batch = static_cast<num::Index>(tokens.size());
  if (embedding_ != nullptr) {
    embedding_->forward(tokens, x);
    return;
  }
  x.resize(batch, config_.vocab, 0.0f);
  for (num::Index b = 0; b < batch; ++b) {
    const num::Index t = tokens[static_cast<std::size_t>(b)];
    ZSS_EXPECTS(t >= 0 && t < config_.vocab);
    x(b, t) = 1.0f;
  }
}

double PrunedLstmLm::train_window(const data::LmBatch& batch,
                                  nn::Optimizer& opt, float clip_norm) {
  const num::Index T = batch.seq_len;
  const num::Index B = batch.batch;
  if (batch.first || h_.rows() != B) reset_state(B);

  auto params = parameters();
  nn::zero_grads(params);

  // ---- Forward ----
  std::vector<nn::LstmStepCache> caches(static_cast<std::size_t>(T));
  std::vector<num::Matrix> h_dense(static_cast<std::size_t>(T));
  std::vector<num::Matrix> h_dropped(static_cast<std::size_t>(T));
  std::vector<nn::Dropout> dropouts(
      static_cast<std::size_t>(T), nn::Dropout(config_.dropout));
  std::vector<num::Matrix> logits(static_cast<std::size_t>(T));
  std::vector<num::Matrix> inputs(static_cast<std::size_t>(T));
  std::vector<std::span<const num::Index>> step_tokens(
      static_cast<std::size_t>(T));

  double total_nll = 0.0;
  num::Matrix h_prev = h_;
  num::Matrix c_prev = c_;
  num::Matrix pruned;
  for (num::Index t = 0; t < T; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    step_tokens[ti] = std::span<const num::Index>(
        batch.inputs.data() + t * B, static_cast<std::size_t>(B));
    make_input(step_tokens[ti], inputs[ti]);

    pruner_.prune(h_prev, pruned);  // Eq. (4)-(5)
    auto out = cell_.forward(inputs[ti], pruned, c_prev, &caches[ti]);
    h_dense[ti] = out.h;

    h_dropped[ti] = out.h;
    dropouts[ti].forward(h_dropped[ti], /*training=*/true, rng_);
    classifier_.forward(h_dropped[ti], logits[ti]);

    const std::span<const num::Index> targets(
        batch.targets.data() + t * B, static_cast<std::size_t>(B));
    num::Matrix dlogits;
    total_nll += num::softmax_xent(logits[ti], targets, &dlogits);
    logits[ti] = std::move(dlogits);  // reuse slot to hold the gradient

    h_prev = std::move(out.h);
    c_prev = std::move(out.c);
  }
  // Carry values (detached) into the next window.
  h_ = h_prev;
  c_ = c_prev;

  // ---- Backward (BPTT) ----
  num::Matrix dh(B, config_.hidden, 0.0f);
  num::Matrix dc(B, config_.hidden, 0.0f);
  const float step_scale = 1.0f / static_cast<float>(T);
  for (num::Index t = T - 1; t >= 0; --t) {
    const auto ti = static_cast<std::size_t>(t);
    // Classifier path. softmax_xent normalized by rows (=B); divide by T
    // so the loss is the mean over all T*B tokens.
    num::scale(logits[ti].flat(), step_scale);
    num::Matrix dh_cls;
    classifier_.backward(h_dropped[ti], logits[ti], dh_cls);
    dropouts[ti].backward(dh_cls);
    num::axpy(1.0f, dh_cls.flat(), dh.flat());

    auto grads = cell_.backward(caches[ti], dh, dc);
    if (embedding_ != nullptr) {
      embedding_->backward(step_tokens[ti], grads.dx);
    }
    // Straight-through estimator (Eq. 6): the gradient w.r.t. the pruned
    // state is applied to the dense state unchanged.
    dh = std::move(grads.dh_prev);
    dc = std::move(grads.dc_prev);
  }

  if (clip_norm > 0.0f) nn::clip_grad_norm(params, clip_norm);
  opt.step(params);
  return total_nll / static_cast<double>(T);
}

LmEval PrunedLstmLm::evaluate(std::span<const num::Index> stream,
                              num::Index batch, num::Index seq_len) {
  data::LmBatcher batcher(stream, batch, seq_len);
  reset_state(batch);

  double nll_sum = 0.0;
  double sparsity_sum = 0.0;
  num::Index steps = 0;
  num::Matrix x;
  num::Matrix pruned;
  num::Matrix logits;
  for (num::Index w = 0; w < batcher.num_windows(); ++w) {
    const data::LmBatch b = batcher.window(w);
    for (num::Index t = 0; t < b.seq_len; ++t) {
      const std::span<const num::Index> tokens(
          b.inputs.data() + t * batch, static_cast<std::size_t>(batch));
      make_input(tokens, x);
      sparsity_sum += pruner_.prune(h_, pruned);
      auto out = cell_.forward(x, pruned, c_, nullptr);
      h_ = std::move(out.h);
      c_ = std::move(out.c);
      classifier_.forward(h_, logits);
      const std::span<const num::Index> targets(
          b.targets.data() + t * batch, static_cast<std::size_t>(batch));
      nll_sum += num::softmax_xent(logits, targets, nullptr);
      ++steps;
    }
  }
  ZSS_ASSERT(steps > 0);
  LmEval eval;
  eval.mean_nll = nll_sum / static_cast<double>(steps);
  eval.bpc = num::bpc_from_nll(eval.mean_nll);
  eval.ppw = num::ppw_from_nll(eval.mean_nll);
  eval.state_sparsity = sparsity_sum / static_cast<double>(steps);
  return eval;
}

double PrunedLstmLm::collect_states(std::span<const num::Index> stream,
                                    num::Index batch, num::Index max_steps,
                                    sparse::SparsityMeter& meter,
                                    std::vector<num::Matrix>* states,
                                    std::vector<num::Matrix>* dense_states) {
  data::LmBatcher batcher(stream, batch, /*seq_len=*/1);
  reset_state(batch);
  const num::Index steps = std::min(max_steps, batcher.num_windows());
  ZSS_EXPECTS(steps > 0);

  double nll_sum = 0.0;
  num::Matrix x;
  num::Matrix pruned;
  num::Matrix logits;
  for (num::Index t = 0; t < steps; ++t) {
    const data::LmBatch b = batcher.window(t);
    make_input(std::span<const num::Index>(b.inputs.data(),
                                           static_cast<std::size_t>(batch)),
               x);
    pruner_.prune(h_, pruned);
    auto out = cell_.forward(x, pruned, c_, nullptr);
    h_ = std::move(out.h);
    c_ = std::move(out.c);

    // What the accelerator's encoder sees is the *stored* state, i.e. the
    // pruned h_t that the next timestep will consume.
    num::Matrix stored;
    pruner_.prune(h_, stored);
    meter.observe(stored);
    if (states != nullptr) states->push_back(stored);
    if (dense_states != nullptr) dense_states->push_back(h_);

    classifier_.forward(h_, logits);
    nll_sum += num::softmax_xent(
        logits,
        std::span<const num::Index>(b.targets.data(),
                                    static_cast<std::size_t>(batch)),
        nullptr);
  }
  return nll_sum / static_cast<double>(steps);
}

std::vector<num::Index> PrunedLstmLm::sample(
    std::span<const num::Index> prefix, num::Index count, bool greedy,
    num::Rng& rng) {
  ZSS_EXPECTS(!prefix.empty());
  reset_state(1);
  num::Matrix x;
  num::Matrix pruned;
  num::Matrix logits;
  std::vector<num::Index> out(prefix.begin(), prefix.end());

  auto step = [&](num::Index token) {
    make_input(std::span<const num::Index>(&token, 1), x);
    pruner_.prune(h_, pruned);
    auto o = cell_.forward(x, pruned, c_, nullptr);
    h_ = std::move(o.h);
    c_ = std::move(o.c);
  };

  for (std::size_t i = 0; i + 1 < prefix.size(); ++i) step(prefix[i]);
  num::Index current = prefix.back();
  for (num::Index n = 0; n < count; ++n) {
    step(current);
    classifier_.forward(h_, logits);
    auto row = logits.row(0);
    if (greedy) {
      current = num::argmax(row);
    } else {
      num::softmax(row);
      const double u = rng.uniform();
      double acc = 0.0;
      current = config_.vocab - 1;
      for (num::Index k = 0; k < config_.vocab; ++k) {
        acc += row[static_cast<std::size_t>(k)];
        if (u < acc) {
          current = k;
          break;
        }
      }
    }
    out.push_back(current);
  }
  return out;
}

std::vector<nn::Parameter*> PrunedLstmLm::parameters() {
  std::vector<nn::Parameter*> params;
  if (embedding_ != nullptr) {
    for (auto* p : embedding_->parameters()) params.push_back(p);
  }
  for (auto* p : cell_.parameters()) params.push_back(p);
  for (auto* p : classifier_.parameters()) params.push_back(p);
  return params;
}

}  // namespace zss::core
