#include "core/sparse_inference.h"

#include "num/activations.h"
#include "num/kernels.h"

namespace zss::core {

SparseLstmEngine::SparseLstmEngine(const nn::LstmCell& cell,
                                   const StatePruner& pruner,
                                   sparse::EncoderConfig encoder)
    : cell_(&cell), pruner_(&pruner), encoder_(encoder) {}

void SparseLstmEngine::finish_step(num::Matrix& pre,
                                   const num::Matrix& c_prev, num::Matrix& h,
                                   num::Matrix& c) {
  const num::Index B = pre.rows();
  const num::Index dh = cell_->hidden_dim();
  h.resize(B, dh);
  c.resize(B, dh);
  for (num::Index r = 0; r < B; ++r) {
    auto row = pre.row(r);
    auto cp = c_prev.row(r);
    for (num::Index j = 0; j < dh; ++j) {
      const float f = num::sigmoid(row[static_cast<std::size_t>(j)]);
      const float i = num::sigmoid(row[static_cast<std::size_t>(dh + j)]);
      const float o = num::sigmoid(row[static_cast<std::size_t>(2 * dh + j)]);
      const float g = num::tanh_act(row[static_cast<std::size_t>(3 * dh + j)]);
      const float cj = f * cp[static_cast<std::size_t>(j)] + i * g;
      c(r, j) = cj;
      h(r, j) = o * num::tanh_act(cj);
    }
  }
  // Store the pruned representation — this is what the encoder writes to
  // DRAM and what the next step will skip over.
  pruner_->prune_inplace(h);
}

void SparseLstmEngine::step(const num::Matrix& x, num::Matrix& h,
                            num::Matrix& c) {
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);

  // pre = x Wx^T + b (the input path is never sparse-skipped).
  num::Matrix pre;
  num::gemm_a_bt(x, cell_->wx().value, pre);
  num::add_bias_rows(pre, cell_->bias().value.flat());
  stats_.input_macs += B * cell_->input_dim() * 4 * dh;

  // Sparse recurrent path: only the weight columns of positions that are
  // non-zero in at least one batch lane are touched. The column partial
  // sums are kept separate from `pre` and added once at the end so the
  // floating-point association matches step_dense() exactly (zero-valued
  // skipped terms are exact identities under IEEE addition).
  const auto enc = sparse::encode(h, encoder_);
  const num::Matrix& wh = cell_->wh().value;
  num::Matrix pre_h(B, 4 * dh, 0.0f);
  num::Index pos = 0;
  for (std::size_t e = 0; e < enc.entries.size(); ++e) {
    pos += enc.entries[e].offset;
    for (num::Index b = 0; b < B; ++b) {
      const float v = enc.values[e * static_cast<std::size_t>(B) +
                                 static_cast<std::size_t>(b)];
      // A lane can still be zero at a kept position (another lane was
      // non-zero); the hardware cannot skip it, and neither do we when
      // counting work, but the float add is a no-op either way.
      num::axpy_col(wh, pos, v, pre_h.row(b));
    }
    ++pos;
  }
  for (std::size_t i = 0; i < pre.flat().size(); ++i) {
    pre.flat()[i] += pre_h.flat()[i];
  }
  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += B * enc.kept_positions() * 4 * dh;
  stats_.kept_positions += enc.kept_positions();
  stats_.positions += dh;
  ++stats_.steps;

  finish_step(pre, c, h, c);
}

void SparseLstmEngine::step_dense(const num::Matrix& x, num::Matrix& h,
                                  num::Matrix& c) {
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);

  num::Matrix pre;
  num::gemm_a_bt(x, cell_->wx().value, pre);
  num::add_bias_rows(pre, cell_->bias().value.flat());
  num::Matrix pre_h;
  num::gemm_a_bt(h, cell_->wh().value, pre_h);
  for (std::size_t i = 0; i < pre.flat().size(); ++i) {
    pre.flat()[i] += pre_h.flat()[i];
  }
  stats_.input_macs += B * cell_->input_dim() * 4 * dh;
  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += B * dh * 4 * dh;
  stats_.kept_positions += dh;
  stats_.positions += dh;
  ++stats_.steps;

  finish_step(pre, c, h, c);
}

}  // namespace zss::core
