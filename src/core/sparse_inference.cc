#include "core/sparse_inference.h"

#include "num/activations.h"
#include "num/kernels.h"

namespace zss::core {

SparseLstmEngine::SparseLstmEngine(const nn::LstmCell& cell,
                                   const StatePruner& pruner,
                                   sparse::EncoderConfig encoder)
    : cell_(&cell),
      pruner_(&pruner),
      encoder_(encoder),
      packed_(nn::PackedLstmWeights::pack(cell)) {
  positions_.reserve(static_cast<std::size_t>(cell.hidden_dim()));
}

void SparseLstmEngine::reserve(num::Index max_batch) {
  ZSS_EXPECTS(max_batch >= 1);
  if (max_batch <= reserved_batch_) return;
  const num::Index dh = cell_->hidden_dim();
  ws_.mat(kPre, max_batch, 4 * dh);
  ws_.mat(kPreH, max_batch, 4 * dh);
  enc_.reserve(dh, max_batch);
  lanes_.reserve(dh, max_batch);
  prune_scratch_.reserve(static_cast<std::size_t>(max_batch * dh));
  reserved_batch_ = max_batch;
}

void SparseLstmEngine::compute_input_path(const num::Matrix& x,
                                          num::Matrix& pre) {
  // pre = x Wx^T + b over the packed layout (the input path is never
  // sparse-skipped, though gemm's exact-zero skip makes one-hot inputs
  // cost only their active rows — identically in step and step_dense).
  num::gemm(x, packed_.wxt, pre);
  num::add_bias_rows(pre, packed_.bias.span());
}

void SparseLstmEngine::finish_step(num::Matrix& pre,
                                   const num::Matrix& c_prev, num::Matrix& h,
                                   num::Matrix& c) {
  const num::Index B = pre.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);
  for (num::Index r = 0; r < B; ++r) {
    auto row = pre.row(r);
    auto cp = c_prev.row(r);
    for (num::Index j = 0; j < dh; ++j) {
      const float f = num::sigmoid(row[static_cast<std::size_t>(j)]);
      const float i = num::sigmoid(row[static_cast<std::size_t>(dh + j)]);
      const float o = num::sigmoid(row[static_cast<std::size_t>(2 * dh + j)]);
      const float g = num::tanh_act(row[static_cast<std::size_t>(3 * dh + j)]);
      const float cj = f * cp[static_cast<std::size_t>(j)] + i * g;
      c(r, j) = cj;
      h(r, j) = o * num::tanh_act(cj);
    }
  }
  // Store the pruned representation — this is what the encoder writes to
  // DRAM and what the next step will skip over. The zero fraction the
  // pruner reports is the per-lane sparsity of the stored state — with
  // the per-lane skip path, exactly the sparsity the next step exploits
  // at any batch size.
  last_.lane_sparsity = pruner_->prune_inplace(h, prune_scratch_);
}

void SparseLstmEngine::step(const num::Matrix& x, num::Matrix& h,
                            num::Matrix& c) {
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);

  if (B > reserved_batch_) reserve(B);  // warm loop: a single compare

  num::Matrix& pre = ws_.uninit(kPre, B, 4 * dh);  // gemm zero-fills it
  compute_input_path(x, pre);
  stats_.input_macs += B * cell_->input_dim() * 4 * dh;

  // Sparse recurrent path: encode the stored state, then accumulate one
  // contiguous packed weight row per kept position (the SIMD backend
  // streams each row with lane-exact FMAs — num/simd/backend.h). The
  // partial sums are kept separate from `pre` and added once at the end
  // so the floating-point association matches step_dense() exactly
  // (zero-valued skipped terms are exact identities under IEEE
  // addition). This holds for any backend because every backend keeps
  // each output element's chain serial and in ascending position order.
  num::Index kept_union = 0;       // positions kept by >= 1 lane
  num::Index kept_lane_total = 0;  // effectual work of this step
  if (B == 1) {
    // Single sequence: the paper's offset encoding, one kept-position
    // list shared by the (only) lane.
    num::Matrix& pre_h = ws_.mat(kPreH, B, 4 * dh, 0.0f);
    sparse::encode_into(h, encoder_, enc_);
    positions_.clear();
    num::Index pos = 0;
    for (const auto& entry : enc_.entries) {
      pos += entry.offset;
      positions_.push_back(pos);
      ++pos;
    }
    num::sparse_accum_rows(packed_.wht, positions_, enc_.values, pre_h);
    kept_union = enc_.kept_positions();
    kept_lane_total = enc_.kept_positions();
    num::axpy(1.0f, pre_h.flat(), pre.flat());
  } else {
    // Batched: per-lane CSR lists, each lane accumulating exactly its
    // own kept rows — the skip survives batching instead of degrading
    // to the intersection of the batch's zero patterns. The overwrite
    // kernel flavour writes every element of the staging matrix (bit-
    // identical to a zero fill + accumulate), so no per-step fill of
    // the B x 4*dh buffer — 256 KB of stores saved at batch 8, dh 1000.
    num::Matrix& pre_h = ws_.uninit(kPreH, B, 4 * dh);
    sparse::encode_lanes_into(h, lanes_);
    num::sparse_accum_rows_multi_overwrite(packed_.wht, lanes_.positions,
                                           lanes_.row_start, lanes_.values,
                                           pre_h);
    kept_union = lanes_.union_kept();
    kept_lane_total = lanes_.total_kept();
    num::axpy(1.0f, pre_h.flat(), pre.flat());
  }

  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += kept_lane_total * 4 * dh;
  stats_.kept_positions += kept_union;
  stats_.positions += dh;
  stats_.lane_kept_positions += kept_lane_total;
  stats_.lane_positions += B * dh;
  ++stats_.steps;
  last_.batch = B;
  last_.kept_positions = kept_union;
  last_.positions = dh;
  last_.lane_kept_positions = kept_lane_total;

  finish_step(pre, c, h, c);
}

void SparseLstmEngine::step_dense(const num::Matrix& x, num::Matrix& h,
                                  num::Matrix& c) {
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);

  if (B > reserved_batch_) reserve(B);  // warm loop: a single compare

  num::Matrix& pre = ws_.uninit(kPre, B, 4 * dh);  // gemm zero-fills it
  compute_input_path(x, pre);
  // Dense recurrent baseline: full dot products over the gate-major
  // weights — every position's terms are accumulated, in the same
  // ascending-position order the sparse path uses for the kept ones.
  num::Matrix& pre_h = ws_.uninit(kPreH, B, 4 * dh);  // gemm_a_bt overwrites
  num::gemm_a_bt(h, cell_->wh().value, pre_h);
  num::axpy(1.0f, pre_h.flat(), pre.flat());

  stats_.input_macs += B * cell_->input_dim() * 4 * dh;
  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += B * dh * 4 * dh;
  stats_.kept_positions += dh;
  stats_.positions += dh;
  stats_.lane_kept_positions += B * dh;
  stats_.lane_positions += B * dh;
  ++stats_.steps;
  last_.batch = B;
  last_.kept_positions = dh;
  last_.positions = dh;
  last_.lane_kept_positions = B * dh;

  finish_step(pre, c, h, c);
}

}  // namespace zss::core
