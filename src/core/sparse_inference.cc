#include "core/sparse_inference.h"

#include <algorithm>
#include <cmath>

#include "num/activations.h"
#include "num/kernels.h"

namespace zss::core {

namespace {

// i32 pre-activation -> int8 LUT input. Round-to-nearest in double (an
// i32 accumulator exceeds float's 24-bit mantissa) then clamp to the
// symmetric ±127 range — the LUT saturates at its input endpoints
// anyway, so clipping only loses already-saturated tails.
std::int8_t requant_pre(std::int32_t v, double acc_to_pre) {
  const double q = std::nearbyint(static_cast<double>(v) * acc_to_pre);
  if (q >= 127.0) return 127;
  if (q <= -127.0) return -127;
  return static_cast<std::int8_t>(q);
}

// Sign-symmetric round-half-away-from-zero integer divide by a positive
// denominator — the quantized datapath's only division, used to bring
// products of two 1/127-grid values back onto the grid. Symmetric so
// negating every input negates every output exactly (the same property
// the symmetric ±127 range buys the quantizer).
std::int32_t rdiv(std::int32_t p, std::int32_t den) {
  return p >= 0 ? (p + den / 2) / den : -((-p + den / 2) / den);
}

std::int32_t clamp_i32(std::int32_t v, std::int32_t lo, std::int32_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

SparseLstmEngine::QuantState::QuantState(const nn::LstmCell& cell,
                                         const QuantConfig& cfg)
    : weights(nn::PackedLstmWeightsI8::pack(cell)),
      sigmoid(quant::Nonlinearity::kSigmoid,
              quant::QuantParams{cfg.pre_clip / 127.0f}),
      tanh_pre(quant::Nonlinearity::kTanh,
               quant::QuantParams{cfg.pre_clip / 127.0f}),
      tanh_c(quant::Nonlinearity::kTanh,
             quant::QuantParams{static_cast<float>(cfg.c_clip) / 127.0f}),
      acc_to_pre(static_cast<double>(weights.weight_scale.scale) /
                 static_cast<double>(cfg.pre_clip)) {}

SparseLstmEngine::SparseLstmEngine(const nn::LstmCell& cell,
                                   const StatePruner& pruner,
                                   sparse::EncoderConfig encoder,
                                   QuantConfig quant)
    : cell_(&cell),
      pruner_(&pruner),
      encoder_(encoder),
      quant_(quant),
      packed_(nn::PackedLstmWeights::pack(cell)) {
  if (quant_.enabled) {
    ZSS_EXPECTS(quant_.pre_clip > 0.0f && quant_.c_clip >= 1);
    q_.emplace(cell, quant_);
  }
  positions_.reserve(static_cast<std::size_t>(cell.hidden_dim()));
}

void SparseLstmEngine::reserve(num::Index max_batch) {
  ZSS_EXPECTS(max_batch >= 1);
  if (max_batch <= reserved_batch_) return;
  const num::Index dh = cell_->hidden_dim();
  ws_.mat(kPre, max_batch, 4 * dh);
  ws_.mat(kPreH, max_batch, 4 * dh);
  enc_.reserve(dh, max_batch);
  lanes_.reserve(dh, max_batch);
  prune_scratch_.reserve(static_cast<std::size_t>(max_batch * dh));
  if (q_) {
    // Integer twins of the workspace slots; reshape grows capacity
    // without the fill pass, matching the fp32 reserve discipline.
    q_->xq.reshape(max_batch, cell_->input_dim());
    q_->hq.reshape(max_batch, dh);
    q_->pre.reshape(max_batch, 4 * dh);
    q_->pre_h.reshape(max_batch, 4 * dh);
    q_->enc.reserve(dh, max_batch);
    q_->lanes.reserve(dh, max_batch);
  }
  reserved_batch_ = max_batch;
}

void SparseLstmEngine::compute_input_path(const num::Matrix& x,
                                          num::Matrix& pre) {
  // pre = x Wx^T + b over the packed layout (the input path is never
  // sparse-skipped, though gemm's exact-zero skip makes one-hot inputs
  // cost only their active rows — identically in step and step_dense).
  num::gemm(x, packed_.wxt, pre);
  num::add_bias_rows(pre, packed_.bias.span());
}

void SparseLstmEngine::finish_step(num::Matrix& pre,
                                   const num::Matrix& c_prev, num::Matrix& h,
                                   num::Matrix& c, num::Matrix* dense_h) {
  const num::Index B = pre.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);
  for (num::Index r = 0; r < B; ++r) {
    auto row = pre.row(r);
    auto cp = c_prev.row(r);
    for (num::Index j = 0; j < dh; ++j) {
      const float f = num::sigmoid(row[static_cast<std::size_t>(j)]);
      const float i = num::sigmoid(row[static_cast<std::size_t>(dh + j)]);
      const float o = num::sigmoid(row[static_cast<std::size_t>(2 * dh + j)]);
      const float g = num::tanh_act(row[static_cast<std::size_t>(3 * dh + j)]);
      const float cj = f * cp[static_cast<std::size_t>(j)] + i * g;
      c(r, j) = cj;
      h(r, j) = o * num::tanh_act(cj);
    }
  }
  // Tap the dense h before pruning: the stacked model feeds the next
  // layer (and the classifier) the unpruned state — only the recurrence
  // re-reads the pruned representation.
  if (dense_h != nullptr) {
    dense_h->reshape(B, dh);
    const auto src = h.flat();
    std::copy(src.begin(), src.end(), dense_h->flat().begin());
  }
  // Store the pruned representation — this is what the encoder writes to
  // DRAM and what the next step will skip over. The zero fraction the
  // pruner reports is the per-lane sparsity of the stored state — with
  // the per-lane skip path, exactly the sparsity the next step exploits
  // at any batch size.
  last_.lane_sparsity = pruner_->prune_inplace(h, prune_scratch_);
}

void SparseLstmEngine::step(const num::Matrix& x, num::Matrix& h,
                            num::Matrix& c, num::Matrix* dense_h) {
  if (q_) {
    step_quant(x, h, c, /*dense=*/false, dense_h);
    return;
  }
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);

  if (B > reserved_batch_) reserve(B);  // warm loop: a single compare

  num::Matrix& pre = ws_.uninit(kPre, B, 4 * dh);  // gemm zero-fills it
  compute_input_path(x, pre);
  stats_.input_macs += B * cell_->input_dim() * 4 * dh;

  // Sparse recurrent path: encode the stored state, then accumulate one
  // contiguous packed weight row per kept position (the SIMD backend
  // streams each row with lane-exact FMAs — num/simd/backend.h). The
  // partial sums are kept separate from `pre` and added once at the end
  // so the floating-point association matches step_dense() exactly
  // (zero-valued skipped terms are exact identities under IEEE
  // addition). This holds for any backend because every backend keeps
  // each output element's chain serial and in ascending position order.
  num::Index kept_union = 0;       // positions kept by >= 1 lane
  num::Index kept_lane_total = 0;  // effectual work of this step
  if (B == 1) {
    // Single sequence: the paper's offset encoding, one kept-position
    // list shared by the (only) lane.
    num::Matrix& pre_h = ws_.mat(kPreH, B, 4 * dh, 0.0f);
    sparse::encode_into(h, encoder_, enc_);
    positions_.clear();
    num::Index pos = 0;
    for (const auto& entry : enc_.entries) {
      pos += entry.offset;
      positions_.push_back(pos);
      ++pos;
    }
    num::sparse_accum_rows(packed_.wht, positions_, enc_.values, pre_h);
    kept_union = enc_.kept_positions();
    kept_lane_total = enc_.kept_positions();
    num::axpy(1.0f, pre_h.flat(), pre.flat());
  } else {
    // Batched: per-lane CSR lists, each lane accumulating exactly its
    // own kept rows — the skip survives batching instead of degrading
    // to the intersection of the batch's zero patterns. The overwrite
    // kernel flavour writes every element of the staging matrix (bit-
    // identical to a zero fill + accumulate), so no per-step fill of
    // the B x 4*dh buffer — 256 KB of stores saved at batch 8, dh 1000.
    num::Matrix& pre_h = ws_.uninit(kPreH, B, 4 * dh);
    sparse::encode_lanes_into(h, lanes_);
    num::sparse_accum_rows_multi_overwrite(packed_.wht, lanes_.positions,
                                           lanes_.row_start, lanes_.values,
                                           pre_h);
    kept_union = lanes_.union_kept();
    kept_lane_total = lanes_.total_kept();
    num::axpy(1.0f, pre_h.flat(), pre.flat());
  }

  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += kept_lane_total * 4 * dh;
  stats_.kept_positions += kept_union;
  stats_.positions += dh;
  stats_.lane_kept_positions += kept_lane_total;
  stats_.lane_positions += B * dh;
  ++stats_.steps;
  last_.batch = B;
  last_.kept_positions = kept_union;
  last_.positions = dh;
  last_.lane_kept_positions = kept_lane_total;

  finish_step(pre, c, h, c, dense_h);
}

void SparseLstmEngine::step_dense(const num::Matrix& x, num::Matrix& h,
                                  num::Matrix& c, num::Matrix* dense_h) {
  if (q_) {
    step_quant(x, h, c, /*dense=*/true, dense_h);
    return;
  }
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);

  if (B > reserved_batch_) reserve(B);  // warm loop: a single compare

  num::Matrix& pre = ws_.uninit(kPre, B, 4 * dh);  // gemm zero-fills it
  compute_input_path(x, pre);
  // Dense recurrent baseline: full dot products over the gate-major
  // weights — every position's terms are accumulated, in the same
  // ascending-position order the sparse path uses for the kept ones.
  num::Matrix& pre_h = ws_.uninit(kPreH, B, 4 * dh);  // gemm_a_bt overwrites
  num::gemm_a_bt(h, cell_->wh().value, pre_h);
  num::axpy(1.0f, pre_h.flat(), pre.flat());

  stats_.input_macs += B * cell_->input_dim() * 4 * dh;
  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += B * dh * 4 * dh;
  stats_.kept_positions += dh;
  stats_.positions += dh;
  stats_.lane_kept_positions += B * dh;
  stats_.lane_positions += B * dh;
  ++stats_.steps;
  last_.batch = B;
  last_.kept_positions = dh;
  last_.positions = dh;
  last_.lane_kept_positions = B * dh;

  finish_step(pre, c, h, c, dense_h);
}

// Quantized step, shared by step() and step_dense() (`dense` picks the
// recurrent flavour). The exactness argument differs from fp32: every
// int8 x int8 product is exact in i32 and accumulation wraps mod 2^32,
// which is associative and commutative — so the sparse paths (which
// skip exactly the zero-valued products) and the dense path produce
// bit-identical pre-activations regardless of summation order, on every
// backend (docs/exactness.md "int8"). All scales are fixed at
// construction, so results are also independent of batch composition —
// the property the serving shard-determinism sweep checks.
void SparseLstmEngine::step_quant(const num::Matrix& x, num::Matrix& h,
                                  num::Matrix& c, bool dense,
                                  num::Matrix* dense_h) {
  const num::Index B = x.rows();
  const num::Index dh = cell_->hidden_dim();
  const num::Index dx = cell_->input_dim();
  ZSS_EXPECTS(h.rows() == B && h.cols() == dh);
  ZSS_EXPECTS(c.rows() == B && c.cols() == dh);

  if (B > reserved_batch_) reserve(B);  // warm loop: a single compare

  QuantState& q = *q_;
  const quant::QuantParams grid{nn::PackedLstmWeightsI8::kStateScale};

  // Input path: x onto the 1/127 grid (one-hot serving inputs are exact
  // on it), then the int8 GEMM and the pre-scaled bias — everything
  // lands on the shared accumulator scale weight_scale/127.
  q.xq.reshape(B, dx);
  quant::quantize(x.flat(), grid, q.xq.flat());
  num::gemm_a_bt_i8(q.xq, q.weights.wx, q.pre);
  const auto bq = q.weights.bias_q.span();
  for (num::Index r = 0; r < B; ++r) {
    auto row = q.pre.row(r);
    for (std::size_t j = 0; j < bq.size(); ++j) {
      row[j] = num::add_i32(row[j], bq[j]);
    }
  }
  stats_.input_macs += B * dx * 4 * dh;

  // Recurrent path over the quantized state. Both flavours multiply the
  // same q.hq — a zero element contributes an exactly-zero product to
  // the dense accumulator and is skipped by the sparse ones, so the
  // flavours agree bitwise.
  q.hq.reshape(B, dh);
  quant::quantize(h.flat(), grid, q.hq.flat());
  q.pre_h.reshape(B, 4 * dh);
  num::Index kept_union = 0;       // positions kept by >= 1 lane
  num::Index kept_lane_total = 0;  // effectual work of this step
  if (dense) {
    num::gemm_a_bt_i8(q.hq, q.weights.wh, q.pre_h);
    kept_union = dh;
    kept_lane_total = B * dh;
  } else if (B == 1) {
    // The paper's offset encoding over int8 values; the int8 sparse
    // kernels accumulate, so the staging matrix is zero-filled first
    // (i32 zero fill + accumulate has no fp32 signed-zero subtleties).
    q.pre_h.fill(0);
    sparse::encode_into(q.hq, encoder_, q.enc);
    positions_.clear();
    num::Index pos = 0;
    for (const auto& entry : q.enc.entries) {
      pos += entry.offset;
      positions_.push_back(pos);
      ++pos;
    }
    num::sparse_accum_rows_i8(q.weights.wht, positions_, q.enc.values,
                              q.pre_h);
    kept_union = q.enc.kept_positions();
    kept_lane_total = q.enc.kept_positions();
  } else {
    q.pre_h.fill(0);
    sparse::encode_lanes_into(q.hq, q.lanes);
    num::sparse_accum_rows_multi_i8(q.weights.wht, q.lanes.positions,
                                    q.lanes.row_start, q.lanes.values,
                                    q.pre_h);
    kept_union = q.lanes.union_kept();
    kept_lane_total = q.lanes.total_kept();
  }
  // Combine the two partials with the wrapping add — same scale, no
  // rescaling, order-free by modular associativity.
  {
    auto p = q.pre.flat();
    auto ph = q.pre_h.flat();
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = num::add_i32(p[i], ph[i]);
    }
  }

  stats_.state_macs_total += B * dh * 4 * dh;
  stats_.state_macs_effectual += kept_lane_total * 4 * dh;
  stats_.kept_positions += kept_union;
  stats_.positions += dh;
  stats_.lane_kept_positions += kept_lane_total;
  stats_.lane_positions += B * dh;
  ++stats_.steps;
  last_.batch = B;
  last_.kept_positions = kept_union;
  last_.positions = dh;
  last_.lane_kept_positions = kept_lane_total;

  finish_step_quant(B, h, c, dense_h);
}

// Integer gate/cell update: one requantize into the LUT domain, LUT
// activations, then a cell update whose only divisions are the
// sign-symmetric rdiv by 127 (grid renormalization after a grid x grid
// product) and by c_clip (folding the cell range into the tanh LUT's
// input span). h and c are written back as float multiples of
// kStateScale — the reference twin must use the identical expression
// (float(q) * kStateScale, not q / 127.0f) for bit-equality.
void SparseLstmEngine::finish_step_quant(num::Index batch, num::Matrix& h,
                                         num::Matrix& c,
                                         num::Matrix* dense_h) {
  QuantState& q = *q_;
  const num::Index dh = cell_->hidden_dim();
  const std::int32_t c_clip = static_cast<std::int32_t>(quant_.c_clip);
  const std::int32_t c_lim = 127 * c_clip;
  for (num::Index r = 0; r < batch; ++r) {
    auto row = q.pre.row(r);
    for (num::Index j = 0; j < dh; ++j) {
      const std::int8_t f =
          q.sigmoid.apply(requant_pre(row[static_cast<std::size_t>(j)],
                                      q.acc_to_pre));
      const std::int8_t i = q.sigmoid.apply(
          requant_pre(row[static_cast<std::size_t>(dh + j)], q.acc_to_pre));
      const std::int8_t o = q.sigmoid.apply(
          requant_pre(row[static_cast<std::size_t>(2 * dh + j)],
                      q.acc_to_pre));
      const std::int8_t g = q.tanh_pre.apply(
          requant_pre(row[static_cast<std::size_t>(3 * dh + j)],
                      q.acc_to_pre));
      // Previous c lies exactly on the 1/127 grid within ±c_clip (this
      // datapath wrote it); a caller-seeded float c is rounded onto it.
      std::int32_t cq = clamp_i32(
          static_cast<std::int32_t>(
              std::nearbyint(static_cast<double>(c(r, j)) * 127.0)),
          -c_lim, c_lim);
      cq = clamp_i32(rdiv(static_cast<std::int32_t>(f) * cq, 127) +
                         rdiv(static_cast<std::int32_t>(i) *
                                  static_cast<std::int32_t>(g),
                              127),
                     -c_lim, c_lim);
      // cq/c_clip maps [-c_lim, c_lim] onto the tanh LUT's ±127 input
      // span (whose grid is c_clip/127).
      const std::int8_t c8 = static_cast<std::int8_t>(rdiv(cq, c_clip));
      const std::int8_t tc = q.tanh_c.apply(c8);
      const std::int32_t hq = rdiv(
          static_cast<std::int32_t>(o) * static_cast<std::int32_t>(tc), 127);
      c(r, j) = static_cast<float>(cq) * nn::PackedLstmWeightsI8::kStateScale;
      h(r, j) = static_cast<float>(hq) * nn::PackedLstmWeightsI8::kStateScale;
    }
  }
  // Dense tap, then prune — same discipline as the fp32 finish_step.
  if (dense_h != nullptr) {
    const num::Index dh2 = cell_->hidden_dim();
    dense_h->reshape(batch, dh2);
    const auto src = h.flat();
    std::copy(src.begin(), src.end(), dense_h->flat().begin());
  }
  // Same pruning as the fp32 path: the stored h is pruned on the float
  // view; zeros survive requantization exactly, so the next step's skip
  // sees precisely the pruner's zero pattern.
  last_.lane_sparsity = pruner_->prune_inplace(h, prune_scratch_);
}

}  // namespace zss::core
