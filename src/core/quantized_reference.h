// Reference twin of the engine's int8 quantized step.
//
// An independent, deliberately naive re-implementation of the quantized
// LSTM step: it quantizes the cell's weights itself (same shared-scale
// rule, written out longhand), walks the gate-major weight matrices
// with plain serial dot products (no packed transposed layout, no skip
// logic, no SIMD), and applies the same LUT activations and integer
// cell update. The engine's quantized step() / step_dense() must match
// it BIT-FOR-BIT on every backend — that is the int8 exactness contract
// (docs/exactness.md "int8"), and this twin is its oracle: the only
// code shared with the engine is the arithmetic the contract itself
// fixes (num::madd_i8 / num::add_i32 wrapping ops, quant::NonlinearLut
// tables, and the pruner that defines which h elements are stored as
// zero).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sparse_inference.h"  // QuantConfig
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/matrix.h"
#include "quant/lut_nonlinear.h"

namespace zss::core {

class QuantizedLstmReference {
 public:
  /// Quantizes the cell's weights on construction with the shared
  /// Wx/Wh scale rule. `cfg.enabled` is ignored — the twin is always
  /// the quantized model.
  QuantizedLstmReference(const nn::LstmCell& cell, const StatePruner& pruner,
                         QuantConfig cfg = QuantConfig::int8());

  /// One timestep over a batch; h and c are (B x dh), updated in place,
  /// h stored pruned. Must equal the engine's quantized step()/
  /// step_dense() output bit-for-bit.
  void step(const num::Matrix& x, num::Matrix& h, num::Matrix& c);

  float weight_scale() const { return wscale_; }

 private:
  const nn::LstmCell* cell_;
  const StatePruner* pruner_;
  QuantConfig cfg_;
  float wscale_ = 1.0f;
  num::MatrixI8 wxq_;      // (4dh x dx) gate-major
  num::MatrixI8 whq_;      // (4dh x dh) gate-major
  num::VectorI32 bias_q_;  // accumulator scale, wscale_/127
  quant::NonlinearLut sigmoid_;
  quant::NonlinearLut tanh_pre_;
  quant::NonlinearLut tanh_c_;
  double acc_to_pre_ = 0.0;
  std::vector<std::int8_t> xq_, hq_;  // per-step quantized row scratch
  std::vector<float> prune_scratch_;
};

}  // namespace zss::core
