// Hidden-state pruning — the paper's core training idea (§II-A).
//
// Forward (Eq. 5):  h^p = 0 where |h| < T, else h.
// Backward (Eq. 6): straight-through — dL/dh ≈ dL/dh^p, i.e. the dense
// state keeps receiving gradient so elements initially under the
// threshold can grow back (the BinaryConnect trick applied to states).
//
// The threshold T is empirical in the paper; sweeping it produces the
// "sparsity degree" axis of Figs. 2-4. For controlled sweeps we also
// provide a target-sparsity mode that derives T per step as the
// q-quantile of |h| over the batch, which pins the achieved sparsity to
// the x-axis value exactly.
#pragma once

#include <vector>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::core {

enum class PruneMode {
  kNone,            // identity (dense baseline)
  kFixedThreshold,  // paper's Eq. 5 with a constant T
  kTargetSparsity,  // T = quantile of |h| so a fixed fraction is zeroed
};

struct PrunerConfig {
  PruneMode mode = PruneMode::kNone;
  float threshold = 0.0f;        // used by kFixedThreshold
  double target_sparsity = 0.0;  // used by kTargetSparsity, in [0, 1]

  static PrunerConfig none() { return {}; }
  static PrunerConfig fixed(float t) {
    return {PruneMode::kFixedThreshold, t, 0.0};
  }
  static PrunerConfig target(double s) {
    return {PruneMode::kTargetSparsity, 0.0f, s};
  }
};

class StatePruner {
 public:
  explicit StatePruner(const PrunerConfig& config);

  /// Writes the pruned state into `pruned` (resized to match). Returns
  /// the fraction of elements zeroed this call.
  double prune(const num::Matrix& h, num::Matrix& pruned) const;

  /// In-place variant.
  double prune_inplace(num::Matrix& h) const;

  /// In-place variant whose quantile scratch lives in `scratch`, so
  /// per-timestep pruning allocates nothing once the caller's buffer is
  /// warm (the inference engine's zero-allocation contract).
  double prune_inplace(num::Matrix& h, std::vector<float>& scratch) const;

  /// The threshold that would be applied to this state under the current
  /// mode (exposed for tests and for exporting a trained model's
  /// effective T to the accelerator).
  float effective_threshold(const num::Matrix& h) const;

  /// Allocation-free variant of effective_threshold.
  float effective_threshold(const num::Matrix& h,
                            std::vector<float>& scratch) const;

  const PrunerConfig& config() const { return config_; }
  bool enabled() const { return config_.mode != PruneMode::kNone; }

 private:
  PrunerConfig config_;
};

}  // namespace zss::core
