// Umbrella header: the public API of the zss-lstm library.
//
// Quick tour:
//   - core::PrunerConfig / core::StatePruner     — hidden-state pruning
//   - core::PrunedLstmLm / PrunedLstmClassifier  — trainable task models
//   - core::SparseLstmEngine                     — skip-aware inference
//   - core::find_sweet_spot                      — sparsity selection
//   - accel::Accelerator (accel/accelerator.h)   — cycle-level simulator
//   - sparse::encode / decode                    — offset state encoding
//   - data::CharCorpus / WordCorpus / GlyphImages— synthetic workloads
#pragma once

#include "core/classifier_model.h"
#include "core/lm_model.h"
#include "core/model_io.h"
#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "core/stacked_lstm.h"
#include "core/sweet_spot.h"
#include "data/batcher.h"
#include "data/char_corpus.h"
#include "data/glyph_images.h"
#include "data/word_corpus.h"
#include "nn/optimizer.h"
#include "num/loss.h"
#include "sparse/encoding.h"
#include "sparse/sparsity_report.h"
