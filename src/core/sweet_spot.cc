#include "core/sweet_spot.h"

#include <algorithm>

#include "num/types.h"

namespace zss::core {

SweetSpot find_sweet_spot(std::span<const SweepPoint> points,
                          double rel_tolerance) {
  ZSS_EXPECTS(rel_tolerance >= 0.0);
  SweetSpot spot;
  if (points.empty()) return spot;

  // Baseline = the lowest-sparsity point (ideally exactly dense).
  const auto baseline = std::min_element(
      points.begin(), points.end(),
      [](const SweepPoint& a, const SweepPoint& b) {
        return a.sparsity < b.sparsity;
      });
  const double budget = baseline->metric * (1.0 + rel_tolerance);

  for (const SweepPoint& p : points) {
    if (p.metric <= budget &&
        (!spot.found || p.sparsity > spot.sparsity)) {
      spot.sparsity = p.sparsity;
      spot.metric = p.metric;
      spot.found = true;
    }
  }
  return spot;
}

}  // namespace zss::core
