// Synthetic grayscale image set (sequential-MNIST stand-in).
//
// The paper's third task feeds MNIST pixels to the LSTM one per timestep
// in scanline order (Fig. 4). MNIST itself is unavailable offline, so we
// render ten procedurally generated glyph classes (bars, crosses, boxes,
// diagonals, ...) with positional jitter, thickness variation and noise.
// The classes are separable from a scanline stream but not trivially so,
// which is all the misclassification-vs-sparsity sweep requires.
#pragma once

#include <string>
#include <vector>

#include "num/matrix.h"
#include "num/rng.h"
#include "num/types.h"

namespace zss::data {

struct GlyphConfig {
  num::Index side = 16;       // image is side x side pixels
  num::Index train_count = 2'000;
  num::Index test_count = 500;
  double noise_stddev = 0.08;
  double jitter_fraction = 0.15;  // max offset as a fraction of side
  std::uint64_t seed = 3;
};

class GlyphImages {
 public:
  static constexpr num::Index kClasses = 10;

  static GlyphImages generate(const GlyphConfig& config);

  /// Row i = image i flattened in scanline order, values in [0, 1].
  const num::Matrix& train_images() const { return train_images_; }
  const std::vector<num::Index>& train_labels() const { return train_labels_; }
  const num::Matrix& test_images() const { return test_images_; }
  const std::vector<num::Index>& test_labels() const { return test_labels_; }

  num::Index side() const { return side_; }
  num::Index pixels() const { return side_ * side_; }

  /// ASCII rendering of one image row (debug / example output).
  std::string render(std::span<const float> image) const;

 private:
  num::Index side_ = 0;
  num::Matrix train_images_;
  std::vector<num::Index> train_labels_;
  num::Matrix test_images_;
  std::vector<num::Index> test_labels_;
};

}  // namespace zss::data
