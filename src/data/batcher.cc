#include "data/batcher.h"

#include <algorithm>

namespace zss::data {

LmBatcher::LmBatcher(std::span<const num::Index> stream, num::Index batch,
                     num::Index seq_len)
    : stream_(stream.begin(), stream.end()),
      batch_(batch),
      seq_len_(seq_len) {
  ZSS_EXPECTS(batch > 0 && seq_len > 0);
  ZSS_EXPECTS(static_cast<num::Index>(stream.size()) > batch * 2);
  // Each lane gets a contiguous chunk; the last token of each lane is
  // only ever a target, hence the -1.
  lane_len_ = static_cast<num::Index>(stream_.size()) / batch_ - 1;
  windows_ = lane_len_ / seq_len_;
  ZSS_EXPECTS(windows_ > 0);
}

LmBatch LmBatcher::window(num::Index w) const {
  ZSS_EXPECTS(w >= 0 && w < windows_);
  LmBatch out;
  out.seq_len = seq_len_;
  out.batch = batch_;
  out.first = (w == 0);
  out.inputs.resize(static_cast<std::size_t>(seq_len_ * batch_));
  out.targets.resize(static_cast<std::size_t>(seq_len_ * batch_));
  const num::Index lane_stride = static_cast<num::Index>(stream_.size()) / batch_;
  for (num::Index t = 0; t < seq_len_; ++t) {
    for (num::Index b = 0; b < batch_; ++b) {
      const num::Index pos = b * lane_stride + w * seq_len_ + t;
      out.inputs[static_cast<std::size_t>(t * batch_ + b)] =
          stream_[static_cast<std::size_t>(pos)];
      out.targets[static_cast<std::size_t>(t * batch_ + b)] =
          stream_[static_cast<std::size_t>(pos + 1)];
    }
  }
  return out;
}

ImageBatcher::ImageBatcher(const num::Matrix& images,
                           std::span<const num::Index> labels,
                           num::Index batch)
    : images_(&images),
      labels_(labels.begin(), labels.end()),
      batch_size_(batch) {
  ZSS_EXPECTS(batch > 0);
  ZSS_EXPECTS(images.rows() == static_cast<num::Index>(labels.size()));
  ZSS_EXPECTS(images.rows() >= batch);
  order_.resize(labels_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<num::Index>(i);
  }
  batches_ = images.rows() / batch_size_;
}

void ImageBatcher::shuffle(num::Rng& rng) {
  // Fisher-Yates with our deterministic engine.
  for (num::Index i = static_cast<num::Index>(order_.size()) - 1; i > 0; --i) {
    const num::Index j = rng.below(i + 1);
    std::swap(order_[static_cast<std::size_t>(i)],
              order_[static_cast<std::size_t>(j)]);
  }
}

ImageBatch ImageBatcher::batch(num::Index b) const {
  ZSS_EXPECTS(b >= 0 && b < batches_);
  ImageBatch out;
  out.images.resize(batch_size_, images_->cols());
  out.labels.resize(static_cast<std::size_t>(batch_size_));
  for (num::Index i = 0; i < batch_size_; ++i) {
    const num::Index src = order_[static_cast<std::size_t>(b * batch_size_ + i)];
    auto dst = out.images.row(i);
    auto s = images_->row(src);
    std::copy(s.begin(), s.end(), dst.begin());
    out.labels[static_cast<std::size_t>(i)] =
        labels_[static_cast<std::size_t>(src)];
  }
  return out;
}

}  // namespace zss::data
