// Synthetic character-level corpus (Penn Treebank stand-in).
//
// PTB is licensed and unavailable offline, so we synthesize a character
// stream with the properties the experiment needs: a 50-symbol vocabulary
// (matching PTB-char), word/sentence structure, and enough regularity
// that an LSTM's BPC falls well below the log2(50) = 5.64 uniform bound —
// giving the pruning sweep of Fig. 2 headroom to show its flat-then-cliff
// shape. Text is built from a fixed lexicon of consonant-vowel words
// drawn with a Zipf law plus an order-1 word Markov structure, joined by
// spaces and sentence punctuation. Fully deterministic from the seed.
#pragma once

#include <string>
#include <vector>

#include "num/rng.h"
#include "num/types.h"

namespace zss::data {

struct CharCorpusConfig {
  num::Index train_chars = 200'000;
  num::Index valid_chars = 20'000;
  num::Index test_chars = 20'000;
  num::Index lexicon_words = 400;
  /// Probability that the next word follows the current word's fixed
  /// successor link (vs. a fresh Zipf draw). Higher = more predictable
  /// text = lower entropy floor; the sparsity sweeps need the model's
  /// capacity to comfortably exceed the task.
  double successor_prob = 0.7;
  std::uint64_t seed = 1;
};

class CharCorpus {
 public:
  /// PTB-char uses a 50-symbol vocabulary; we match it exactly.
  static constexpr num::Index kVocab = 50;

  static CharCorpus generate(const CharCorpusConfig& config);

  const std::vector<num::Index>& train() const { return train_; }
  const std::vector<num::Index>& valid() const { return valid_; }
  const std::vector<num::Index>& test() const { return test_; }

  num::Index vocab_size() const { return kVocab; }

  /// Printable character for a symbol id (for sampling demos).
  char symbol(num::Index id) const;

  /// Renders a token sequence as text.
  std::string to_text(const std::vector<num::Index>& ids) const;

 private:
  std::vector<num::Index> train_;
  std::vector<num::Index> valid_;
  std::vector<num::Index> test_;
};

}  // namespace zss::data
