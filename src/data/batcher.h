// Batch iteration for the two workload shapes:
//  - LmBatcher: continuous BPTT batching for token streams (char/word LM),
//    splitting the stream into `batch` parallel lanes and yielding
//    (input, target) windows of `seq_len` steps, state carried across
//    windows within an epoch exactly like the standard PTB recipe.
//  - ImageBatcher: shuffled minibatches of (image, label) pairs.
#pragma once

#include <span>
#include <vector>

#include "num/matrix.h"
#include "num/rng.h"
#include "num/types.h"

namespace zss::data {

/// One BPTT window. Token layout is time-major: token at (t, lane b) is
/// inputs[t * batch + b]; targets are the next tokens, same layout.
struct LmBatch {
  std::vector<num::Index> inputs;
  std::vector<num::Index> targets;
  num::Index seq_len = 0;
  num::Index batch = 0;
  /// True for the first window of an epoch (reset recurrent state).
  bool first = false;
};

class LmBatcher {
 public:
  LmBatcher(std::span<const num::Index> stream, num::Index batch,
            num::Index seq_len);

  num::Index num_windows() const { return windows_; }
  num::Index batch() const { return batch_; }
  num::Index seq_len() const { return seq_len_; }

  /// Window w of the epoch, w in [0, num_windows()).
  LmBatch window(num::Index w) const;

 private:
  std::vector<num::Index> stream_;
  num::Index batch_;
  num::Index seq_len_;
  num::Index lane_len_ = 0;  // tokens per lane usable as inputs
  num::Index windows_ = 0;
};

/// One image minibatch: row i of `images` is a flattened image whose
/// label is `labels[i]`.
struct ImageBatch {
  num::Matrix images;
  std::vector<num::Index> labels;
};

class ImageBatcher {
 public:
  ImageBatcher(const num::Matrix& images, std::span<const num::Index> labels,
               num::Index batch);

  num::Index num_batches() const { return batches_; }

  /// Reshuffles the order (call once per epoch for SGD).
  void shuffle(num::Rng& rng);

  ImageBatch batch(num::Index b) const;

 private:
  const num::Matrix* images_;
  std::vector<num::Index> labels_;
  std::vector<num::Index> order_;
  num::Index batch_size_;
  num::Index batches_;
};

}  // namespace zss::data
