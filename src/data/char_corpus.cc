#include "data/char_corpus.h"

#include <algorithm>
#include <cmath>

namespace zss::data {
namespace {

// Symbol table: 26 letters, space, period, comma, apostrophe, hyphen,
// digits 0-9, and 10 extra marks to reach exactly 50 symbols like PTB.
constexpr char kSymbols[CharCorpus::kVocab + 1] =
    "abcdefghijklmnopqrstuvwxyz .,'-0123456789;:!?()\"/&";

constexpr num::Index kSpace = 26;
constexpr num::Index kPeriod = 27;
constexpr num::Index kComma = 28;

num::Index letter(char c) { return static_cast<num::Index>(c - 'a'); }

/// Builds one synthetic word as alternating consonant-vowel syllables so
/// that character transitions are predictable.
std::vector<num::Index> make_word(num::Rng& rng) {
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxz";
  static constexpr char kVowels[] = "aeiouy";
  const num::Index syllables = 1 + rng.below(3);
  std::vector<num::Index> w;
  for (num::Index s = 0; s < syllables; ++s) {
    w.push_back(letter(kConsonants[rng.below(20)]));
    w.push_back(letter(kVowels[rng.below(6)]));
    if (rng.bernoulli(0.3)) w.push_back(letter(kConsonants[rng.below(20)]));
  }
  return w;
}

/// Zipf sampler over [0, n): P(k) proportional to 1/(k+1).
class Zipf {
 public:
  explicit Zipf(num::Index n) : cdf_(static_cast<std::size_t>(n)) {
    double acc = 0.0;
    for (num::Index k = 0; k < n; ++k) {
      acc += 1.0 / static_cast<double>(k + 1);
      cdf_[static_cast<std::size_t>(k)] = acc;
    }
    for (auto& v : cdf_) v /= acc;
  }

  num::Index sample(num::Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<num::Index>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

CharCorpus CharCorpus::generate(const CharCorpusConfig& config) {
  ZSS_EXPECTS(config.train_chars > 0 && config.valid_chars > 0 &&
              config.test_chars > 0);
  ZSS_EXPECTS(config.lexicon_words >= 10);
  ZSS_EXPECTS(config.successor_prob >= 0.0 && config.successor_prob <= 1.0);
  num::Rng rng(config.seed);

  // Fixed lexicon. Each word also gets a "successor bias": a preferred
  // next word, giving the stream order-1 word structure on top of the
  // intra-word syllable structure.
  std::vector<std::vector<num::Index>> lexicon;
  lexicon.reserve(static_cast<std::size_t>(config.lexicon_words));
  for (num::Index i = 0; i < config.lexicon_words; ++i) {
    lexicon.push_back(make_word(rng));
  }
  std::vector<num::Index> successor(lexicon.size());
  for (auto& s : successor) s = rng.below(config.lexicon_words);

  Zipf zipf(config.lexicon_words);

  const num::Index total =
      config.train_chars + config.valid_chars + config.test_chars;
  std::vector<num::Index> stream;
  stream.reserve(static_cast<std::size_t>(total) + 64);

  num::Index word = zipf.sample(rng);
  num::Index words_in_sentence = 0;
  while (static_cast<num::Index>(stream.size()) < total) {
    for (num::Index c : lexicon[static_cast<std::size_t>(word)]) {
      stream.push_back(c);
    }
    ++words_in_sentence;
    // Sentence boundary roughly every 8 words; comma sometimes.
    if (words_in_sentence >= 8 && rng.bernoulli(0.4)) {
      stream.push_back(kPeriod);
      words_in_sentence = 0;
    } else if (rng.bernoulli(0.06)) {
      stream.push_back(kComma);
    }
    stream.push_back(kSpace);
    // Follow the successor link with the configured probability
    // (predictable), otherwise resample from the Zipf marginal.
    word = rng.bernoulli(config.successor_prob)
               ? successor[static_cast<std::size_t>(word)]
               : zipf.sample(rng);
  }
  stream.resize(static_cast<std::size_t>(total));

  CharCorpus corpus;
  auto begin = stream.begin();
  corpus.train_.assign(begin, begin + config.train_chars);
  begin += config.train_chars;
  corpus.valid_.assign(begin, begin + config.valid_chars);
  begin += config.valid_chars;
  corpus.test_.assign(begin, begin + config.test_chars);
  return corpus;
}

char CharCorpus::symbol(num::Index id) const {
  ZSS_EXPECTS(id >= 0 && id < kVocab);
  return kSymbols[id];
}

std::string CharCorpus::to_text(const std::vector<num::Index>& ids) const {
  std::string out;
  out.reserve(ids.size());
  for (num::Index id : ids) out.push_back(symbol(id));
  return out;
}

}  // namespace zss::data
