// Synthetic word-level corpus (Penn Treebank word-LM stand-in).
//
// The word task needs a large vocabulary (PTB uses 10k), a heavy-tailed
// unigram distribution and inter-word structure an LSTM can exploit. We
// generate a topic-Markov stream: each word belongs to one of a small
// number of topics; the topic follows a sticky Markov chain and words are
// drawn Zipf-wise within the active topic. Perplexity therefore has a
// learnable gap below the unigram baseline, which the pruning sweep of
// Fig. 3 needs. Deterministic from the seed.
#pragma once

#include <vector>

#include "num/rng.h"
#include "num/types.h"

namespace zss::data {

struct WordCorpusConfig {
  num::Index vocab_size = 10'000;
  num::Index topics = 32;
  /// Probability of staying in the current topic at each step.
  double topic_stickiness = 0.92;
  num::Index train_tokens = 90'000;
  num::Index valid_tokens = 7'000;
  num::Index test_tokens = 8'000;
  std::uint64_t seed = 2;
};

class WordCorpus {
 public:
  static WordCorpus generate(const WordCorpusConfig& config);

  const std::vector<num::Index>& train() const { return train_; }
  const std::vector<num::Index>& valid() const { return valid_; }
  const std::vector<num::Index>& test() const { return test_; }

  num::Index vocab_size() const { return vocab_size_; }

 private:
  num::Index vocab_size_ = 0;
  std::vector<num::Index> train_;
  std::vector<num::Index> valid_;
  std::vector<num::Index> test_;
};

}  // namespace zss::data
