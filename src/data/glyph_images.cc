#include "data/glyph_images.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace zss::data {
namespace {

struct Canvas {
  num::Index side;
  std::span<float> px;

  void set(num::Index r, num::Index c, float v) {
    if (r < 0 || r >= side || c < 0 || c >= side) return;
    px[static_cast<std::size_t>(r * side + c)] =
        std::clamp(px[static_cast<std::size_t>(r * side + c)] + v, 0.0f, 1.0f);
  }

  void hline(num::Index r, float v, num::Index thick) {
    for (num::Index t = 0; t < thick; ++t) {
      for (num::Index c = 0; c < side; ++c) set(r + t, c, v);
    }
  }

  void vline(num::Index c, float v, num::Index thick) {
    for (num::Index t = 0; t < thick; ++t) {
      for (num::Index r = 0; r < side; ++r) set(r, c + t, v);
    }
  }

  void diag(bool main, float v, num::Index thick) {
    for (num::Index t = 0; t < thick; ++t) {
      for (num::Index r = 0; r < side; ++r) {
        const num::Index c = main ? r : side - 1 - r;
        set(r, c + t, v);
      }
    }
  }

  void box(num::Index inset, float v, num::Index thick) {
    for (num::Index t = 0; t < thick; ++t) {
      const num::Index lo = inset + t;
      const num::Index hi = side - 1 - inset - t;
      for (num::Index c = lo; c <= hi; ++c) {
        set(lo, c, v);
        set(hi, c, v);
      }
      for (num::Index r = lo; r <= hi; ++r) {
        set(r, lo, v);
        set(r, hi, v);
      }
    }
  }

  void diamond(float v) {
    const num::Index mid = side / 2;
    for (num::Index r = 0; r < side; ++r) {
      const num::Index d = std::abs(r - mid);
      set(r, mid - (mid - d), v);
      set(r, mid + (mid - d), v);
    }
  }
};

void draw_class(Canvas& canvas, num::Index cls, num::Index jitter,
                num::Index thick, float amp) {
  const num::Index mid = canvas.side / 2;
  switch (cls) {
    case 0:  // horizontal bar
      canvas.hline(mid + jitter, amp, thick);
      break;
    case 1:  // vertical bar
      canvas.vline(mid + jitter, amp, thick);
      break;
    case 2:  // main diagonal
      canvas.diag(true, amp, thick);
      break;
    case 3:  // anti-diagonal
      canvas.diag(false, amp, thick);
      break;
    case 4:  // plus
      canvas.hline(mid + jitter, amp, thick);
      canvas.vline(mid + jitter, amp, thick);
      break;
    case 5:  // X
      canvas.diag(true, amp, thick);
      canvas.diag(false, amp, thick);
      break;
    case 6:  // box outline
      canvas.box(2 + (jitter >= 0 ? jitter : -jitter), amp, thick);
      break;
    case 7:  // T: top bar + center column
      canvas.hline(1 + (jitter >= 0 ? jitter : -jitter), amp, thick);
      canvas.vline(mid, amp, thick);
      break;
    case 8:  // L: bottom bar + left column
      canvas.hline(canvas.side - 2 - (jitter >= 0 ? jitter : -jitter), amp,
                   thick);
      canvas.vline(1 + (jitter >= 0 ? jitter : -jitter), amp, thick);
      break;
    case 9:  // diamond
      canvas.diamond(amp);
      break;
    default:
      ZSS_ASSERT(false);
  }
}

void fill_split(num::Matrix& images, std::vector<num::Index>& labels,
                num::Index count, const GlyphConfig& config, num::Rng& rng) {
  images.resize(count, config.side * config.side, 0.0f);
  labels.resize(static_cast<std::size_t>(count));
  const auto max_jitter = static_cast<num::Index>(
      config.jitter_fraction * static_cast<double>(config.side));
  for (num::Index i = 0; i < count; ++i) {
    const num::Index cls = i % GlyphImages::kClasses;
    labels[static_cast<std::size_t>(i)] = cls;
    Canvas canvas{config.side, images.row(i)};
    const num::Index jitter =
        max_jitter > 0 ? rng.below(2 * max_jitter + 1) - max_jitter : 0;
    const num::Index thick = 1 + rng.below(2);
    const auto amp = static_cast<float>(rng.uniform(0.7, 1.0));
    draw_class(canvas, cls, jitter, thick, amp);
    if (config.noise_stddev > 0.0) {
      for (float& p : images.row(i)) {
        p = std::clamp(
            p + static_cast<float>(rng.normal(0.0, config.noise_stddev)),
            0.0f, 1.0f);
      }
    }
  }
}

}  // namespace

GlyphImages GlyphImages::generate(const GlyphConfig& config) {
  ZSS_EXPECTS(config.side >= 8);
  ZSS_EXPECTS(config.train_count >= kClasses && config.test_count >= kClasses);
  num::Rng rng(config.seed);
  GlyphImages out;
  out.side_ = config.side;
  fill_split(out.train_images_, out.train_labels_, config.train_count, config,
             rng);
  fill_split(out.test_images_, out.test_labels_, config.test_count, config,
             rng);
  return out;
}

std::string GlyphImages::render(std::span<const float> image) const {
  static constexpr char kShades[] = " .:-=+*#%@";
  std::string s;
  s.reserve(static_cast<std::size_t>((side_ + 1) * side_));
  for (num::Index r = 0; r < side_; ++r) {
    for (num::Index c = 0; c < side_; ++c) {
      const float v = image[static_cast<std::size_t>(r * side_ + c)];
      const auto shade = static_cast<num::Index>(v * 9.99f);
      s.push_back(kShades[std::clamp<num::Index>(shade, 0, 9)]);
    }
    s.push_back('\n');
  }
  return s;
}

}  // namespace zss::data
