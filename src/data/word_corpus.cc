#include "data/word_corpus.h"

#include <algorithm>
#include <cmath>

namespace zss::data {
namespace {

/// Alias-free Zipf CDF sampler over word ranks.
class ZipfCdf {
 public:
  ZipfCdf(num::Index n, double exponent) : cdf_(static_cast<std::size_t>(n)) {
    double acc = 0.0;
    for (num::Index k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
      cdf_[static_cast<std::size_t>(k)] = acc;
    }
    for (auto& v : cdf_) v /= acc;
  }

  num::Index sample(num::Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<num::Index>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

WordCorpus WordCorpus::generate(const WordCorpusConfig& config) {
  ZSS_EXPECTS(config.vocab_size >= 100);
  ZSS_EXPECTS(config.topics >= 2 && config.topics <= config.vocab_size);
  ZSS_EXPECTS(config.topic_stickiness > 0.0 && config.topic_stickiness < 1.0);
  num::Rng rng(config.seed);

  // Partition the vocabulary across topics: word w belongs to topic
  // w % topics, so each topic owns ~vocab/topics words. Within a topic,
  // ranks follow Zipf over the topic's own words.
  const num::Index per_topic = config.vocab_size / config.topics;
  ZipfCdf zipf(per_topic, 1.05);

  const num::Index total =
      config.train_tokens + config.valid_tokens + config.test_tokens;
  std::vector<num::Index> stream;
  stream.reserve(static_cast<std::size_t>(total));

  num::Index topic = rng.below(config.topics);
  for (num::Index t = 0; t < total; ++t) {
    if (!rng.bernoulli(config.topic_stickiness)) {
      // Topic transition favours the "next" topic, giving the chain
      // longer-range structure than a uniform jump.
      topic = rng.bernoulli(0.6) ? (topic + 1) % config.topics
                                 : rng.below(config.topics);
    }
    const num::Index rank = zipf.sample(rng);
    const num::Index word = rank * config.topics + topic;
    stream.push_back(std::min(word, config.vocab_size - 1));
  }

  WordCorpus corpus;
  corpus.vocab_size_ = config.vocab_size;
  auto begin = stream.begin();
  corpus.train_.assign(begin, begin + config.train_tokens);
  begin += config.train_tokens;
  corpus.valid_.assign(begin, begin + config.valid_tokens);
  begin += config.valid_tokens;
  corpus.test_.assign(begin, begin + config.test_tokens);
  return corpus;
}

}  // namespace zss::data
