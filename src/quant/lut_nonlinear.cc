#include "quant/lut_nonlinear.h"

#include <algorithm>
#include <cmath>

namespace zss::quant {
namespace {

float eval(Nonlinearity kind, float x) {
  switch (kind) {
    case Nonlinearity::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case Nonlinearity::kTanh:
      return std::tanh(x);
    case Nonlinearity::kIdentity:
      return x;
  }
  ZSS_ASSERT(false);
  return 0.0f;
}

}  // namespace

NonlinearLut::NonlinearLut(Nonlinearity kind, QuantParams in)
    : kind_(kind), in_(in) {
  for (int code = -128; code <= 127; ++code) {
    const float x = static_cast<float>(code) * in.scale;
    const float y = eval(kind, x);
    const float q = std::nearbyint(y / kOutScale);
    table_[static_cast<std::uint8_t>(static_cast<std::int8_t>(code))] =
        static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
}

void NonlinearLut::apply(std::span<const std::int8_t> in,
                         std::span<std::int8_t> out) const {
  ZSS_EXPECTS(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = apply(in[i]);
}

float NonlinearLut::max_abs_error() const {
  float worst = 0.0f;
  for (int code = -128; code <= 127; ++code) {
    const float x = static_cast<float>(code) * in_.scale;
    const float exact = eval(kind_, x);
    const float approx =
        to_float(table_[static_cast<std::uint8_t>(static_cast<std::int8_t>(code))]);
    worst = std::max(worst, std::fabs(exact - approx));
  }
  return worst;
}

}  // namespace zss::quant
