#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

namespace zss::quant {

QuantParams choose_scale(std::span<const float> x) {
  float mx = 0.0f;
  for (float v : x) mx = std::max(mx, std::fabs(v));
  if (mx == 0.0f) return QuantParams{1.0f};
  return QuantParams{mx / 127.0f};
}

std::int8_t quantize_one(float x, QuantParams p) {
  ZSS_EXPECTS(p.scale > 0.0f);
  const float q = std::nearbyint(x / p.scale);
  const float clamped = std::clamp(q, -127.0f, 127.0f);
  return static_cast<std::int8_t>(clamped);
}

void quantize(std::span<const float> x, QuantParams p,
              std::span<std::int8_t> out) {
  ZSS_EXPECTS(x.size() == out.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = quantize_one(x[i], p);
}

float dequantize_one(std::int8_t q, QuantParams p) {
  return static_cast<float>(q) * p.scale;
}

void dequantize(std::span<const std::int8_t> q, QuantParams p,
                std::span<float> out) {
  ZSS_EXPECTS(q.size() == out.size());
  for (std::size_t i = 0; i < q.size(); ++i) out[i] = dequantize_one(q[i], p);
}

QuantParams quantize_matrix(const num::Matrix& w, num::MatrixI8& out) {
  out.resize(w.rows(), w.cols());
  const QuantParams p = choose_scale(w.flat());
  quantize(w.flat(), p, out.flat());
  return p;
}

void qgemv(const num::MatrixI8& w, QuantParams wp,
           std::span<const std::int8_t> x, QuantParams xp,
           std::span<float> y) {
  ZSS_EXPECTS(w.cols() == static_cast<num::Index>(x.size()));
  ZSS_EXPECTS(w.rows() == static_cast<num::Index>(y.size()));
  const num::Index m = w.rows();
  const num::Index n = w.cols();
  const float out_scale = wp.scale * xp.scale;
  for (num::Index i = 0; i < m; ++i) {
    const std::int8_t* row = w.data() + i * n;
    std::int32_t acc = 0;
    for (num::Index j = 0; j < n; ++j) {
      acc += static_cast<std::int32_t>(row[j]) *
             static_cast<std::int32_t>(x[static_cast<std::size_t>(j)]);
    }
    y[static_cast<std::size_t>(i)] = static_cast<float>(acc) * out_scale;
  }
}

double roundtrip_mse(std::span<const float> x, QuantParams p) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (float v : x) {
    const float r = dequantize_one(quantize_one(v, p), p);
    acc += static_cast<double>(v - r) * static_cast<double>(v - r);
  }
  return acc / static_cast<double>(x.size());
}

}  // namespace zss::quant
