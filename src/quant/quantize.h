// Symmetric 8-bit quantization used throughout the paper's evaluation
// ("an 8-bit quantization for all weights and input/hidden vectors",
// §II-B) and in the accelerator datapath.
#pragma once

#include <cstdint>
#include <span>

#include "num/matrix.h"
#include "num/types.h"

namespace zss::quant {

/// Scale of a symmetric int8 quantizer: real = scale * q, q in [-127, 127].
struct QuantParams {
  float scale = 1.0f;

  friend bool operator==(const QuantParams&, const QuantParams&) = default;
};

/// Chooses the symmetric scale that maps max|x| to 127. A zero vector
/// gets scale 1 so round-tripping stays exact.
QuantParams choose_scale(std::span<const float> x);

/// Quantizes to int8 with round-to-nearest and clamping to [-127, 127].
/// (-128 is unused: symmetric range keeps negation exact, which the
/// accelerator's sign-magnitude skip logic relies on.)
void quantize(std::span<const float> x, QuantParams p,
              std::span<std::int8_t> out);

std::int8_t quantize_one(float x, QuantParams p);

/// Inverse map q -> scale * q.
void dequantize(std::span<const std::int8_t> q, QuantParams p,
                std::span<float> out);

float dequantize_one(std::int8_t q, QuantParams p);

/// Quantizes a whole matrix with one per-tensor scale.
QuantParams quantize_matrix(const num::Matrix& w, num::MatrixI8& out);

/// y_float = dequant( Wq * xq ) with full-width int32 accumulation.
/// Reference integer matvec used to validate the accelerator datapath.
void qgemv(const num::MatrixI8& w, QuantParams wp,
           std::span<const std::int8_t> x, QuantParams xp,
           std::span<float> y);

/// Mean squared quantization error of round-tripping x (diagnostics).
double roundtrip_mse(std::span<const float> x, QuantParams p);

}  // namespace zss::quant
