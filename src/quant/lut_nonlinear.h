// 256-entry lookup-table nonlinearities.
//
// Each accelerator tile owns hardware sigmoid/tanh units (Fig. 6). The
// standard low-cost implementation is a LUT indexed by the quantized
// pre-activation; we model exactly that so the functional simulator's
// arithmetic matches what the RTL would compute bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "quant/quantize.h"

namespace zss::quant {

/// Kind of nonlinearity a tile applies (tiles 1-3: sigmoid, tile 4: tanh).
enum class Nonlinearity { kSigmoid, kTanh, kIdentity };

/// Maps int8 pre-activations (scale `in`) to int8 activations.
///
/// Output scale is fixed at 1/127 so that tanh spans [-127, 127] and
/// sigmoid spans [0, 127]; this keeps the Hadamard products of Eq. (2)
/// on one common scale, which is what lets the hardware chain tiles
/// without per-element rescaling.
class NonlinearLut {
 public:
  static constexpr float kOutScale = 1.0f / 127.0f;

  NonlinearLut(Nonlinearity kind, QuantParams in);

  std::int8_t apply(std::int8_t q) const {
    return table_[static_cast<std::uint8_t>(q)];
  }

  void apply(std::span<const std::int8_t> in,
             std::span<std::int8_t> out) const;

  /// Dequantized value of an output code.
  static float to_float(std::int8_t q) {
    return static_cast<float>(q) * kOutScale;
  }

  Nonlinearity kind() const { return kind_; }
  QuantParams in_params() const { return in_; }

  /// Largest absolute error of the LUT against the float function over
  /// the representable input range (used by fidelity tests).
  float max_abs_error() const;

 private:
  Nonlinearity kind_;
  QuantParams in_;
  std::array<std::int8_t, 256> table_{};
};

}  // namespace zss::quant
