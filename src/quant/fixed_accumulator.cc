#include "quant/fixed_accumulator.h"

#include <algorithm>

namespace zss::quant {

FixedAccumulator::FixedAccumulator(int bits, int pre_shift)
    : bits_(bits),
      pre_shift_(pre_shift),
      max_((std::int32_t{1} << (bits - 1)) - 1),
      min_(-(std::int32_t{1} << (bits - 1))) {
  ZSS_EXPECTS(bits >= 2 && bits <= 30);
  ZSS_EXPECTS(pre_shift >= 0 && pre_shift <= 16);
}

void FixedAccumulator::add_product(std::int32_t product) {
  // Round-to-nearest arithmetic shift: add half an LSB of the shifted
  // scale before shifting. For pre_shift 0 this is exact.
  std::int32_t shifted = product;
  if (pre_shift_ > 0) {
    const std::int32_t half = std::int32_t{1} << (pre_shift_ - 1);
    shifted = (product + half) >> pre_shift_;
  }
  add_raw(shifted);
}

void FixedAccumulator::add_raw(std::int32_t value) {
  const std::int64_t wide = static_cast<std::int64_t>(acc_) + value;
  if (wide > max_) {
    acc_ = max_;
    saturated_ = true;
  } else if (wide < min_) {
    acc_ = min_;
    saturated_ = true;
  } else {
    acc_ = static_cast<std::int32_t>(wide);
  }
}

void FixedAccumulator::reset() {
  acc_ = 0;
  saturated_ = false;
}

}  // namespace zss::quant
