// Model of the PE scratch-memory accumulator.
//
// The paper gives each PE a 16 x 12-bit scratch SRAM holding one partial
// sum per batch (Fig. 6). A 12-bit word cannot hold the full-precision
// sum of hundreds of 8x8-bit products, so the hardware must accumulate at
// reduced precision: products are right-shifted before accumulation and
// the stored partial saturates at the 12-bit boundary. This class models
// that behaviour with configurable width/shift so the accuracy cost of
// the design choice can be measured (bench/ablation_accum_width).
#pragma once

#include <cstdint>

#include "num/types.h"

namespace zss::quant {

class FixedAccumulator {
 public:
  /// `bits` is the stored word width (sign included), `pre_shift` the
  /// arithmetic right shift (with round-to-nearest) applied to each
  /// product before accumulation.
  explicit FixedAccumulator(int bits = 12, int pre_shift = 6);

  /// Accumulates one 8x8-bit product (given at full int32 precision).
  void add_product(std::int32_t product);

  /// Adds an already-shifted value (used when merging partials).
  void add_raw(std::int32_t value);

  /// Stored value in scratch-word units.
  std::int32_t raw() const { return acc_; }

  /// Value re-expressed in product units (raw << pre_shift), i.e. on the
  /// same scale an ideal full-precision accumulator would produce.
  std::int32_t value() const { return acc_ << pre_shift_; }

  /// True if any add saturated at the word boundary.
  bool saturated() const { return saturated_; }

  int bits() const { return bits_; }
  int pre_shift() const { return pre_shift_; }
  std::int32_t max_raw() const { return max_; }
  std::int32_t min_raw() const { return min_; }

  void reset();

 private:
  int bits_;
  int pre_shift_;
  std::int32_t max_;
  std::int32_t min_;
  std::int32_t acc_ = 0;
  bool saturated_ = false;
};

}  // namespace zss::quant
