// Fig. 3 — word-level language modeling: perplexity per word (PPW) on the
// test set versus hidden-state sparsity degree.
//
// Paper setup: PTB words (vocab 10k), embedding 300, LSTM d_h = 300,
// sequence 35, dropout 0.5 on non-recurrent connections, SGD lr 1 with
// decay 1.2, gradient clip 5. Result: PPW ~89 flat to >90% sparsity.
//
// Laptop defaults shrink the vocabulary and dims; --vocab=10000
// --embed=300 --hidden=300 --train=929000 reproduces the paper scale.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lm_model.h"
#include "core/sweet_spot.h"
#include "data/word_corpus.h"

namespace {

using namespace zss;

void train_epochs(core::PrunedLstmLm& model, const data::WordCorpus& corpus,
                  num::Index seq, num::Index batch, int epochs) {
  nn::Sgd sgd(1.0f);  // the paper's lr 1 with decay 1.2 per epoch
  data::LmBatcher batcher(corpus.train(), batch, seq);
  for (int e = 0; e < epochs; ++e) {
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), sgd, 5.0f);
    }
    sgd.decay(1.2f);
  }
}

// Warm-started pruned fine-tuning from the trained dense model (budget
// deviation from the paper's from-scratch protocol; see DESIGN.md §7).
double run_point(const core::PrunedLstmLm& dense_model,
                 const data::WordCorpus& corpus, double sparsity,
                 num::Index embed, num::Index hidden, num::Index seq,
                 num::Index batch, int tune_epochs) {
  core::LmConfig cfg;
  cfg.vocab = corpus.vocab_size();
  cfg.embed_dim = embed;
  cfg.hidden = hidden;
  cfg.dropout = 0.5;  // Zaremba-style non-recurrent dropout (§II-B.2)
  if (sparsity > 0.0) cfg.pruner = core::PrunerConfig::target(sparsity);
  core::PrunedLstmLm model(cfg);
  auto src = const_cast<core::PrunedLstmLm&>(dense_model).parameters();
  auto dst = model.parameters();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  if (sparsity > 0.0) train_epochs(model, corpus, seq, batch, tune_epochs);
  return model.evaluate(corpus.test(), 4, seq).ppw;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  data::WordCorpusConfig dcfg;
  dcfg.vocab_size = flags.get_int("vocab", 1000);
  dcfg.train_tokens = flags.get_int("train", 22000);
  dcfg.valid_tokens = flags.get_int("valid", 2000);
  dcfg.test_tokens = flags.get_int("test", 2500);
  const auto corpus = data::WordCorpus::generate(dcfg);

  const auto embed = static_cast<num::Index>(flags.get_int("embed", 48));
  const auto hidden = static_cast<num::Index>(flags.get_int("hidden", 48));
  const auto seq = static_cast<num::Index>(flags.get_int("seq", 35));
  const auto batch = static_cast<num::Index>(flags.get_int("batch", 10));
  const int epochs = static_cast<int>(flags.get_int("epochs", 2));

  bench::print_header(
      "Fig. 3: word-level LM, PPW vs sparsity degree (synthetic PTB)");
  std::printf(
      "config: vocab=%ld embed=%ld hidden=%ld seq=%ld batch=%ld epochs=%d\n",
      static_cast<long>(dcfg.vocab_size), static_cast<long>(embed),
      static_cast<long>(hidden), static_cast<long>(seq),
      static_cast<long>(batch), epochs);
  std::printf("paper (PTB 10k, d_h=300): PPW ~89 flat past 90%% sparsity\n\n");
  std::printf("%-18s %10s\n", "sparsity_degree", "test_PPW");

  core::LmConfig dense_cfg;
  dense_cfg.vocab = corpus.vocab_size();
  dense_cfg.embed_dim = embed;
  dense_cfg.hidden = hidden;
  dense_cfg.dropout = 0.5;
  core::PrunedLstmLm dense_model(dense_cfg);
  train_epochs(dense_model, corpus, seq, batch, epochs);

  const int tune_epochs = static_cast<int>(flags.get_int("tune-epochs", 2));
  const std::vector<double> sweep = {0.0, 0.5, 0.8, 0.9, 0.95, 0.99};
  std::vector<core::SweepPoint> curve;
  for (double s : sweep) {
    const double ppw = run_point(dense_model, corpus, s, embed, hidden, seq,
                                 batch, tune_epochs);
    curve.push_back({s, ppw});
    std::printf("%-18.2f %10.2f\n", s * 100.0, ppw);
    std::fflush(stdout);
  }

  const auto spot = core::find_sweet_spot(curve, 0.02);
  if (spot.found) {
    std::printf("\nsweet spot: %.0f%% sparsity at PPW %.2f "
                "(paper: >90%% with no PPW loss)\n",
                spot.sparsity * 100.0, spot.metric);
  }
  return 0;
}
