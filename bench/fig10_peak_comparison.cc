// Fig. 10 — peak performance of state-of-the-art LSTM accelerators:
// this work vs ESE (Han et al., FPGA'17) and CBSR (Park et al., DATE'18).
//
// The paper compares published peak numbers: ESE reports 2.52 TOPS
// (sparse-equivalent) on a Xilinx FPGA; CBSR improves ESE by 25-30%, so
// the paper plots 1.3x ESE = 3.3 TOPS; "this work" is plotted at 4.8
// TOPS. Our reproduction computes this work's peak equivalent
// throughput from the cycle model: the best sparse operating point of
// Fig. 8 scaled to the peak-efficiency regime.
#include <cstdio>

#include "accel/energy.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "bench_util.h"

namespace {

using namespace zss;
using accel::AcceleratorConfig;
using accel::RunTotals;
using accel::Scheduler;
using accel::WorkloadShape;

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 30));

  const AcceleratorConfig cfg;
  Scheduler sched(cfg);
  num::Rng rng(5);

  bench::print_header("Fig. 10: peak performance vs ESE and CBSR (TOPS)");

  // This work's best sustained equivalent throughput: the char sweet
  // spot at batch 8 (the paper's most efficient sparse point), plus the
  // batch-1 97% point which maximizes the skip factor.
  RunTotals char8;
  RunTotals char1;
  for (num::Index t = 0; t < steps; ++t) {
    char8.add(sched.run_timestep(
                  WorkloadShape::ptb_char(8),
                  accel::mask_from_intersected_sparsity(
                      WorkloadShape::ptb_char(8), 0.81, rng)),
              WorkloadShape::ptb_char(8));
    char1.add(sched.run_timestep(
                  WorkloadShape::ptb_char(1),
                  accel::mask_from_intersected_sparsity(
                      WorkloadShape::ptb_char(1), 0.97, rng)),
              WorkloadShape::ptb_char(1));
  }
  const double best_gops =
      std::max(char8.gops(cfg), char1.gops(cfg));

  // Peak claim: the paper headlines 4.8 TOPS(/W) — its best sparse
  // efficiency point (4765.1 GOPS/W a.k.a. ~4.8 T) — against ESE's
  // published 2.52 TOPS and CBSR at 1.3x ESE.
  const double ese_tops = 2.52;           // published (FPGA'17)
  const double cbsr_tops = ese_tops * 1.3;  // paper's estimate
  const double this_work_paper = 4.8;

  accel::EnergyModel energy(accel::EnergyConfig{}, cfg);
  const double best_teff = energy.gops_per_watt(char8) / 1000.0;

  std::printf("%-34s %10s %10s\n", "accelerator", "TOPS", "paper");
  std::printf("%-34s %10.2f %10.2f  (= best sparse GOPS/W / 1000; the\n",
              "This work (peak equivalent)", best_teff, this_work_paper);
  std::printf("%-34s %10s %10s   paper plots its 4.8 TOPS/W figure)\n", "",
              "", "");
  std::printf("%-34s %10.2f %10.2f\n", "ESE (published)", ese_tops, 2.5);
  std::printf("%-34s %10.2f %10.2f\n", "CBSR (1.3x ESE, est.)", cbsr_tops,
              3.3);

  std::printf("\nsustained sparse equivalent throughput (this work): "
              "%.1f GOPS (char batch 8 sweet spot)\n", best_gops);
  std::printf("speedup vs ESE:  %.2fx (paper: 1.9x)\n",
              best_teff * 1000.0 / (ese_tops * 1000.0));
  std::printf("speedup vs CBSR: %.2fx (paper: 1.5x)\n",
              best_teff * 1000.0 / (cbsr_tops * 1000.0));
  std::printf("\nnote: ESE reports 61.5 GOPS/W peak on FPGA; this work's "
              "4.8 TOPS/W is an ASIC number,\nso the paper itself flags the "
              "energy comparison as not apples-to-apples (§IV)\n");
  return 0;
}
