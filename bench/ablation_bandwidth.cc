// Ablation A2 — DRAM bandwidth sweep: zero-state skipping pays most when
// the weight stream is the bottleneck. As bandwidth grows the design
// goes compute-bound and the sparse advantage converges to the
// batch-intersection ceiling; as it shrinks, skipping is the only thing
// keeping throughput alive.
#include <cstdio>

#include "accel/report.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace zss;
  const bench::Flags flags(argc, argv);
  const double sparsity = flags.get("sparsity", 0.81);  // char batch-8 spot
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 20));

  bench::print_header(
      "Ablation A2: DRAM bandwidth sweep (PTB-Char, batch 8)");
  std::printf("intersected sparsity: %.0f%%; paper operates at 51.2 Gbps\n\n",
              sparsity * 100.0);
  std::printf("%10s %14s %12s %12s %10s\n", "Gbps", "weights/cycle",
              "dense_GOPS", "sparse_GOPS", "speedup");

  for (double gbps : {6.4, 12.8, 25.6, 51.2, 102.4, 204.8, 409.6}) {
    accel::AcceleratorConfig cfg;
    cfg.dram_gbps = gbps;
    accel::Scheduler sched(cfg);
    num::Rng rng(7);
    const auto shape = accel::WorkloadShape::ptb_char(8);
    accel::RunTotals dense;
    accel::RunTotals sparse;
    for (num::Index t = 0; t < steps; ++t) {
      dense.add(sched.run_timestep_dense(shape), shape);
      const auto mask =
          accel::mask_from_intersected_sparsity(shape, sparsity, rng);
      sparse.add(sched.run_timestep(shape, mask), shape);
    }
    std::printf("%10.1f %14lld %12.1f %12.1f %9.2fx\n", gbps,
                static_cast<long long>(cfg.weights_per_cycle()),
                dense.gops(cfg), sparse.gops(cfg),
                sparse.gops(cfg) / dense.gops(cfg));
  }

  std::printf(
      "\nreading: below ~100 Gbps the dense design is bandwidth-starved\n"
      "and skipping multiplies throughput; once compute-bound, speedup\n"
      "settles at ~1/(1-s) regardless of bandwidth.\n");
  return 0;
}
