// Fig. 9 — accelerator energy efficiency (GOPS/W) for dense and sparse
// states across the three tasks and batch sizes 1 / 8 / 16.
//
// Every (GOPS, GOPS/W) pair in the paper implies a constant 83 mW chip
// power (76.8 GOPS peak at 925.3 GOPS/W, §III-C) — the synthesis-time
// power estimate applied to measured runtimes. The default energy mode
// reproduces exactly that; pass --component for the activity-based model.
#include <cstdio>
#include <vector>

#include "accel/energy.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "bench_util.h"

namespace {

using namespace zss;
using accel::AcceleratorConfig;
using accel::EnergyConfig;
using accel::EnergyMode;
using accel::EnergyModel;
using accel::RunTotals;
using accel::Scheduler;
using accel::WorkloadShape;

struct Row {
  const char* label;
  WorkloadShape shape;
  double sparsity;  // <0 means dense
  double paper_gops_per_w;
};

RunTotals simulate(const Scheduler& sched, const WorkloadShape& shape,
                   double sparsity, num::Index steps, num::Rng& rng) {
  RunTotals totals;
  for (num::Index t = 0; t < steps; ++t) {
    if (sparsity < 0.0) {
      totals.add(sched.run_timestep_dense(shape), shape);
    } else {
      const auto mask =
          accel::mask_from_intersected_sparsity(shape, sparsity, rng);
      totals.add(sched.run_timestep(shape, mask), shape);
    }
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 20));

  const AcceleratorConfig cfg;
  EnergyConfig ecfg;
  if (flags.has("component")) ecfg.mode = EnergyMode::kComponent;
  const EnergyModel energy(ecfg, cfg);
  Scheduler sched(cfg);
  num::Rng rng(987);

  bench::print_header(
      "Fig. 9: accelerator energy efficiency (GOPS/W), dense vs sparse");
  std::printf("energy mode: %s (chip power %s)\n\n",
              ecfg.mode == EnergyMode::kCalibratedConstant
                  ? "calibrated-constant"
                  : "component",
              ecfg.mode == EnergyMode::kCalibratedConstant
                  ? "83 mW, the paper's synthesis estimate"
                  : "activity-based");

  const std::vector<Row> rows = {
      {"PTB-Char  dense  batch 1", WorkloadShape::ptb_char(1), -1, 115.7},
      {"PTB-Char  dense  batch 8", WorkloadShape::ptb_char(8), -1, 920.5},
      {"PTB-Char  dense  batch 16", WorkloadShape::ptb_char(16), -1, 920.5},
      {"PTB-Char  sparse batch 1", WorkloadShape::ptb_char(1), 0.97, 3791.6},
      {"PTB-Char  sparse batch 8", WorkloadShape::ptb_char(8), 0.81, 4765.1},
      {"PTB-Char  sparse batch 16", WorkloadShape::ptb_char(16), 0.66,
       2686.7},
      {"PTB-Word  dense  batch 1", WorkloadShape::ptb_word(1), -1, 115.7},
      {"PTB-Word  dense  batch 8", WorkloadShape::ptb_word(8), -1, 918.1},
      {"PTB-Word  dense  batch 16", WorkloadShape::ptb_word(16), -1, 918.1},
      {"PTB-Word  sparse batch 1", WorkloadShape::ptb_word(1), 0.93, 215.7},
      {"PTB-Word  sparse batch 8", WorkloadShape::ptb_word(8), 0.63, 1335.0},
      {"PTB-Word  sparse batch 16", WorkloadShape::ptb_word(16), 0.41,
       1151.8},
      {"MNIST     dense  batch 1", WorkloadShape::mnist(1), -1, 115.7},
      {"MNIST     dense  batch 8", WorkloadShape::mnist(8), -1, 895.2},
      {"MNIST     dense  batch 16", WorkloadShape::mnist(16), -1, 895.2},
      {"MNIST     sparse batch 1", WorkloadShape::mnist(1), 0.83, 608.4},
      {"MNIST     sparse batch 8", WorkloadShape::mnist(8), 0.55, 1859.0},
      {"MNIST     sparse batch 16", WorkloadShape::mnist(16), 0.43, 1504.8},
  };

  double best_sparse = 0.0;
  double best_dense = 0.0;
  for (const Row& row : rows) {
    const auto totals = simulate(sched, row.shape, row.sparsity, steps, rng);
    const double gpw = energy.gops_per_watt(totals);
    bench::print_row(row.label, gpw, row.paper_gops_per_w);
    if (row.sparsity < 0.0) {
      best_dense = std::max(best_dense, gpw);
    } else {
      best_sparse = std::max(best_sparse, gpw);
    }
  }

  std::printf(
      "\nbest sparse / best dense energy efficiency: %.1fx "
      "(paper: up to 5.2x, 4765.1/920.5)\n",
      best_sparse / best_dense);
  return 0;
}
