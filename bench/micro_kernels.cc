// Ablation A5 — kernel microbenchmarks (google-benchmark): the software
// building blocks whose costs the simulator and trainer are built on.
//
// The output header carries a "zss_kernel_backend" context line naming
// the SIMD backend the default-dispatched benchmarks ran on, so JSONs
// from different machines (or ZSS_KERNEL_BACKEND settings) stay
// comparable. The BM_*PerBackend benchmarks additionally pin each
// available backend in turn and label the rows accordingly.
#include <benchmark/benchmark.h>

#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "nn/packed_weights.h"
#include "num/kernels.h"
#include "num/reference_kernels.h"
#include "num/rng.h"
#include "num/simd/backend.h"
#include "quant/quantize.h"
#include "sparse/encoding.h"

namespace {

using namespace zss;

num::Matrix random_matrix(num::Index rows, num::Index cols,
                          std::uint64_t seed) {
  num::Rng rng(seed);
  num::Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void BM_GemvDense(benchmark::State& state) {
  const auto n = static_cast<num::Index>(state.range(0));
  const auto w = random_matrix(4 * n, n, 1);
  std::vector<float> x(static_cast<std::size_t>(n), 0.5f);
  std::vector<float> y(static_cast<std::size_t>(4 * n));
  for (auto _ : state) {
    num::gemv(w, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n);
}
BENCHMARK(BM_GemvDense)->Arg(128)->Arg(256)->Arg(512);

void BM_SparseColumnGemv(benchmark::State& state) {
  // The skip-aware matvec at 90% sparsity: accumulate 10% of columns.
  const auto n = static_cast<num::Index>(state.range(0));
  const auto w = random_matrix(4 * n, n, 2);
  num::Rng rng(3);
  std::vector<num::Index> kept;
  for (num::Index j = 0; j < n; ++j) {
    if (rng.bernoulli(0.1)) kept.push_back(j);
  }
  std::vector<float> y(static_cast<std::size_t>(4 * n), 0.0f);
  for (auto _ : state) {
    for (num::Index j : kept) num::axpy_col(w, j, 0.5f, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<num::Index>(kept.size()) * 4 * n);
}
BENCHMARK(BM_SparseColumnGemv)->Arg(128)->Arg(256)->Arg(512);

// The packed-row sparse accumulation at 90% sparsity — same work as
// BM_SparseColumnGemv, but streaming contiguous transposed rows instead
// of stride-4n column gathers.
void BM_SparseAccumRowsPacked(benchmark::State& state) {
  const auto n = static_cast<num::Index>(state.range(0));
  const auto w = random_matrix(4 * n, n, 2);
  num::Matrix packed;
  num::transpose(w, packed);
  num::Rng rng(3);
  std::vector<num::Index> kept;
  for (num::Index j = 0; j < n; ++j) {
    if (rng.bernoulli(0.1)) kept.push_back(j);
  }
  const std::vector<float> values(kept.size(), 0.5f);
  num::Matrix out(1, 4 * n, 0.0f);
  for (auto _ : state) {
    num::sparse_accum_rows(packed, kept, values, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<num::Index>(kept.size()) * 4 * n);
}
BENCHMARK(BM_SparseAccumRowsPacked)->Arg(128)->Arg(256)->Arg(512);

// Blocked gemm_a_bt (the dense recurrent/BPTT shape) against the seed's
// scalar one-dot-per-element kernel — the acceptance target is >= 2x at
// dh = 512 on the same machine.
void BM_GemmABtBlocked(benchmark::State& state) {
  const auto dh = static_cast<num::Index>(state.range(0));
  const auto a = random_matrix(8, dh, 20);
  const auto b = random_matrix(4 * dh, dh, 21);
  num::Matrix c;
  for (auto _ : state) {
    num::gemm_a_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 4 * dh * dh);
}
BENCHMARK(BM_GemmABtBlocked)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmABtSeedScalar(benchmark::State& state) {
  const auto dh = static_cast<num::Index>(state.range(0));
  const auto a = random_matrix(8, dh, 20);
  const auto b = random_matrix(4 * dh, dh, 21);
  num::Matrix c;
  for (auto _ : state) {
    num::reference::gemm_a_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 4 * dh * dh);
}
BENCHMARK(BM_GemmABtSeedScalar)->Arg(128)->Arg(256)->Arg(512);

void BM_GemvBlockedVsSeed(benchmark::State& state) {
  const auto n = static_cast<num::Index>(state.range(0));
  const auto w = random_matrix(4 * n, n, 22);
  std::vector<float> x(static_cast<std::size_t>(n), 0.5f);
  std::vector<float> y(static_cast<std::size_t>(4 * n));
  const bool blocked = state.range(1) != 0;
  for (auto _ : state) {
    if (blocked) {
      num::gemv(w, x, y);
    } else {
      num::reference::gemv(w, x, y);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n);
}
BENCHMARK(BM_GemvBlockedVsSeed)
    ->Args({512, 0})
    ->Args({512, 1});

void BM_QuantizedGemv(benchmark::State& state) {
  const auto n = static_cast<num::Index>(state.range(0));
  const auto w = random_matrix(4 * n, n, 4);
  num::MatrixI8 wq;
  const auto wp = quant::quantize_matrix(w, wq);
  std::vector<std::int8_t> xq(static_cast<std::size_t>(n), 42);
  std::vector<float> y(static_cast<std::size_t>(4 * n));
  for (auto _ : state) {
    quant::qgemv(wq, wp, xq, quant::QuantParams{0.01f}, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n);
}
BENCHMARK(BM_QuantizedGemv)->Arg(128)->Arg(256);

void BM_StatePruner(benchmark::State& state) {
  const auto n = static_cast<num::Index>(state.range(0));
  const core::StatePruner pruner(core::PrunerConfig::target(0.95));
  const auto h = random_matrix(8, n, 5);
  num::Matrix out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruner.prune(h, out));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_StatePruner)->Arg(256)->Arg(1024);

void BM_Encoder(benchmark::State& state) {
  const auto n = static_cast<num::Index>(state.range(0));
  num::Rng rng(6);
  num::Matrix h(8, n, 0.0f);
  for (float& v : h.flat()) {
    if (rng.bernoulli(0.1)) v = static_cast<float>(rng.normal());
  }
  const sparse::EncoderConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::encode(h, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_Encoder)->Arg(256)->Arg(1024);

void BM_LstmCellForward(benchmark::State& state) {
  const auto dh = static_cast<num::Index>(state.range(0));
  num::Rng rng(7);
  nn::LstmCell cell(64, dh, rng);
  const auto x = random_matrix(8, 64, 8);
  const auto h = random_matrix(8, dh, 9);
  const auto c = random_matrix(8, dh, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.forward(x, h, c, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 4 * dh * (64 + dh));
}
BENCHMARK(BM_LstmCellForward)->Arg(64)->Arg(128)->Arg(256);

void BM_LstmCellTrainStep(benchmark::State& state) {
  const auto dh = static_cast<num::Index>(state.range(0));
  num::Rng rng(11);
  nn::LstmCell cell(64, dh, rng);
  const auto x = random_matrix(8, 64, 12);
  const auto h = random_matrix(8, dh, 13);
  const auto c = random_matrix(8, dh, 14);
  const num::Matrix dh_grad(8, dh, 0.1f);
  const num::Matrix dc_grad(8, dh, 0.0f);
  for (auto _ : state) {
    nn::LstmStepCache cache;
    benchmark::DoNotOptimize(cell.forward(x, h, c, &cache));
    benchmark::DoNotOptimize(cell.backward(cache, dh_grad, dc_grad));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 4 * dh * (64 + dh) * 3);
}
BENCHMARK(BM_LstmCellTrainStep)->Arg(64)->Arg(128);

void BM_SchedulerTimestep(benchmark::State& state) {
  const accel::AcceleratorConfig cfg;
  const accel::Scheduler sched(cfg);
  const auto shape = accel::WorkloadShape::ptb_char(8);
  num::Rng rng(15);
  const auto mask = accel::mask_from_intersected_sparsity(shape, 0.81, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run_timestep(shape, mask));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerTimestep);

// The two kernels the SIMD backends exist for, each pinned to one
// backend (state.label names it). Comparing rows of this benchmark on
// one machine is the apples-to-apples scalar-vs-avx2 number.
void BM_GemmABtPerBackend(benchmark::State& state,
                          const num::simd::KernelBackend* backend) {
  num::simd::set_backend_for_testing(backend);
  const num::Index dh = 512;
  const auto a = random_matrix(8, dh, 20);
  const auto b = random_matrix(4 * dh, dh, 21);
  num::Matrix c;
  for (auto _ : state) {
    num::gemm_a_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 4 * dh * dh);
  state.SetLabel(backend->name);
  num::simd::set_backend_for_testing(nullptr);
}

void BM_SparseAccumRowsPerBackend(benchmark::State& state,
                                  const num::simd::KernelBackend* backend) {
  num::simd::set_backend_for_testing(backend);
  const num::Index dh = 512;
  const auto w = random_matrix(4 * dh, dh, 2);
  num::Matrix packed;
  num::transpose(w, packed);
  num::Rng rng(3);
  std::vector<num::Index> kept;
  for (num::Index j = 0; j < dh; ++j) {
    if (rng.bernoulli(0.1)) kept.push_back(j);
  }
  const std::vector<float> values(kept.size(), 0.5f);
  num::Matrix out(1, 4 * dh, 0.0f);
  for (auto _ : state) {
    num::sparse_accum_rows(packed, kept, values, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<num::Index>(kept.size()) * 4 * dh);
  state.SetLabel(backend->name);
  num::simd::set_backend_for_testing(nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("zss_kernel_backend",
                              zss::num::simd::active_backend().name);
  for (const auto* backend : zss::num::simd::available_backends()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_GemmABtPerBackend/dh512/") + backend->name).c_str(),
        BM_GemmABtPerBackend, backend);
    benchmark::RegisterBenchmark(
        (std::string("BM_SparseAccumRowsPerBackend/dh512/") + backend->name)
            .c_str(),
        BM_SparseAccumRowsPerBackend, backend);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
