// Fig. 2 — character-level language modeling: BPC on the test set versus
// hidden-state sparsity degree.
//
// Paper setup: PTB characters (vocab 50), LSTM d_h = 1000, sequence 100,
// Adam lr 2e-3, batch 64, 8-bit quantized weights/activations. Result:
// flat BPC (~1.46) up to the 97% sweet spot, then a cliff.
//
// This bench trains one model per sparsity degree on the synthetic
// character corpus (see DESIGN.md §4 for the substitution argument) at
// laptop dimensions by default; pass --hidden=1000 --train=5017000
// --seq=100 --epochs=N for the paper's scale.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lm_model.h"
#include "core/sweet_spot.h"
#include "data/char_corpus.h"

namespace {

using namespace zss;

struct Result {
  double sparsity;
  double bpc;
};

void train_epochs(core::PrunedLstmLm& model, const data::CharCorpus& corpus,
                  num::Index seq, num::Index batch, int epochs) {
  nn::Adam adam(2e-3f);  // the paper's update rule and learning rate
  data::LmBatcher batcher(corpus.train(), batch, seq);
  for (int e = 0; e < epochs; ++e) {
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
}

// The paper trains each sparsity point to convergence from scratch
// (days of GPU time at d_h = 1000). At laptop budget we train the dense
// model once and adapt it to each sparsity degree with pruned
// fine-tuning — the same STE training loop, warm-started. DESIGN.md §7
// records this as a budget deviation, not an algorithmic one.
Result run_point(const core::PrunedLstmLm& dense_model,
                 const data::CharCorpus& corpus, double sparsity,
                 num::Index hidden, num::Index seq, num::Index batch,
                 int tune_epochs) {
  core::LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = hidden;
  if (sparsity > 0.0) cfg.pruner = core::PrunerConfig::target(sparsity);
  core::PrunedLstmLm model(cfg);

  // Warm start: copy the dense model's trained parameters.
  auto src = const_cast<core::PrunedLstmLm&>(dense_model).parameters();
  auto dst = model.parameters();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i]->value = src[i]->value;
  }
  if (sparsity > 0.0) {
    train_epochs(model, corpus, seq, batch, tune_epochs);
  }
  const auto eval = model.evaluate(corpus.test(), 4, seq);
  return {sparsity, eval.bpc};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  data::CharCorpusConfig dcfg;
  dcfg.train_chars = flags.get_int("train", 30000);
  dcfg.valid_chars = flags.get_int("valid", 3000);
  dcfg.test_chars = flags.get_int("test", 3000);
  // The sweep needs the model's capacity to exceed the task (the paper
  // uses d_h = 1000 on PTB); at laptop dims we lower the corpus entropy
  // instead of raising d_h.
  dcfg.lexicon_words = flags.get_int("lexicon", 120);
  dcfg.successor_prob = flags.get("successor", 0.85);
  const auto corpus = data::CharCorpus::generate(dcfg);

  const auto hidden = static_cast<num::Index>(flags.get_int("hidden", 64));
  const auto seq = static_cast<num::Index>(flags.get_int("seq", 25));
  const auto batch = static_cast<num::Index>(flags.get_int("batch", 8));
  const int epochs = static_cast<int>(flags.get_int("epochs", 4));

  bench::print_header(
      "Fig. 2: char-level LM, BPC vs sparsity degree (synthetic PTB)");
  std::printf("config: hidden=%ld seq=%ld batch=%ld epochs=%d train=%ld\n",
              static_cast<long>(hidden), static_cast<long>(seq),
              static_cast<long>(batch), epochs,
              static_cast<long>(dcfg.train_chars));
  std::printf("paper (PTB, d_h=1000): BPC ~1.46 flat through the 97%% "
              "sweet spot, rising past it\n\n");
  std::printf("%-18s %10s\n", "sparsity_degree", "test_BPC");

  core::LmConfig dense_cfg;
  dense_cfg.vocab = data::CharCorpus::kVocab;
  dense_cfg.hidden = hidden;
  core::PrunedLstmLm dense_model(dense_cfg);
  train_epochs(dense_model, corpus, seq, batch, epochs);

  const int tune_epochs = static_cast<int>(flags.get_int("tune-epochs", 2));
  const std::vector<double> sweep = {0.0, 0.2, 0.4,  0.6,  0.8,
                                     0.9, 0.95, 0.97, 0.99};
  std::vector<core::SweepPoint> curve;
  for (double s : sweep) {
    const Result r =
        run_point(dense_model, corpus, s, hidden, seq, batch, tune_epochs);
    curve.push_back({r.sparsity, r.bpc});
    std::printf("%-18.2f %10.4f\n", r.sparsity * 100.0, r.bpc);
    std::fflush(stdout);
  }

  const auto spot = core::find_sweet_spot(curve, 0.02);
  if (spot.found) {
    std::printf("\nsweet spot: %.0f%% sparsity at BPC %.4f "
                "(paper: 97%% at no BPC loss)\n",
                spot.sparsity * 100.0, spot.metric);
  }
  return 0;
}
