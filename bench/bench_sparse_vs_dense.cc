// Wall-clock sparse vs dense inference stepping.
//
// The paper's MAC-count speedups (Figs. 8-9) only matter in software if
// the skip path is also faster on real hardware — which is exactly what
// the packed-weight engine is for. This bench times step() against
// step_dense() across state sparsity levels and batch sizes, checks the
// bit-exactness contract on the fly, and emits a machine-readable
// BENCH_sparse_inference.json so the perf trajectory of the repo tracks
// every change to the kernel layer.
//
// Usage: bench_sparse_vs_dense [--dh=512] [--dx=64] [--steps=200] [--quick]
// Writes BENCH_sparse_inference.json into the working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/quantized_reference.h"
#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/matrix.h"
#include "num/rng.h"
#include "num/simd/backend.h"

namespace {

using namespace zss;

struct Result {
  double sparsity_target = 0.0;
  num::Index batch = 0;
  double sparse_us_per_step = 0.0;
  double dense_us_per_step = 0.0;
  double wall_speedup = 0.0;
  double observed_sparsity = 0.0;       // union (batch-intersected) view
  double observed_lane_sparsity = 0.0;  // what the per-lane skip exploits
  double mac_speedup = 0.0;
  bool bit_exact = false;
};

num::Matrix random_matrix(num::Index rows, num::Index cols, num::Rng& rng) {
  num::Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

template <typename F>
double time_us_per_step(num::Index steps, F&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (num::Index t = 0; t < steps; ++t) body();
  const auto end = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(end - start).count();
  return us / static_cast<double>(steps);
}

Result run_one(const nn::LstmCell& cell, double sparsity, num::Index batch,
               num::Index steps, std::uint64_t seed) {
  const num::Index dh = cell.hidden_dim();
  const num::Index dx = cell.input_dim();
  const core::StatePruner pruner(core::PrunerConfig::target(sparsity));
  core::SparseLstmEngine sparse(cell, pruner);
  core::SparseLstmEngine dense(cell, pruner);

  num::Rng rng(seed);
  std::vector<num::Matrix> inputs;
  inputs.reserve(8);
  for (int i = 0; i < 8; ++i) inputs.push_back(random_matrix(batch, dx, rng));

  num::Matrix h_s(batch, dh, 0.0f), c_s(batch, dh, 0.0f);
  num::Matrix h_d(batch, dh, 0.0f), c_d(batch, dh, 0.0f);

  // Warm-up: reach the pruned steady state, fill the workspaces, and
  // check the contract while we are at it.
  bool exact = true;
  for (int t = 0; t < 8; ++t) {
    const num::Matrix& x = inputs[static_cast<std::size_t>(t) % inputs.size()];
    sparse.step(x, h_s, c_s);
    dense.step_dense(x, h_d, c_d);
    exact = exact && h_s == h_d && c_s == c_d;
  }
  sparse.reset_stats();

  std::size_t i = 0;
  Result r;
  r.sparse_us_per_step = time_us_per_step(steps, [&] {
    sparse.step(inputs[i++ % inputs.size()], h_s, c_s);
  });
  i = 0;
  r.dense_us_per_step = time_us_per_step(steps, [&] {
    dense.step_dense(inputs[i++ % inputs.size()], h_d, c_d);
  });

  r.sparsity_target = sparsity;
  r.batch = batch;
  r.wall_speedup = r.dense_us_per_step / r.sparse_us_per_step;
  r.observed_sparsity = sparse.stats().observed_sparsity();
  r.observed_lane_sparsity = sparse.stats().observed_lane_sparsity();
  r.mac_speedup = sparse.stats().state_speedup();
  r.bit_exact = exact;
  return r;
}

// Int8 twin of run_one: quantized step() vs quantized step_dense(),
// with the exactness check widened to the reference twin — the first
// warm-up steps are also verified against core::QuantizedLstmReference
// (naive serial integer loops), so bit_exact here certifies the whole
// int8 datapath, not just that two engine paths agree with each other
// (docs/exactness.md "int8").
Result run_one_quant(const nn::LstmCell& cell, double sparsity,
                     num::Index batch, num::Index steps, std::uint64_t seed) {
  const num::Index dh = cell.hidden_dim();
  const num::Index dx = cell.input_dim();
  const core::StatePruner pruner(core::PrunerConfig::target(sparsity));
  core::SparseLstmEngine sparse(cell, pruner, {}, core::QuantConfig::int8());
  core::SparseLstmEngine dense(cell, pruner, {}, core::QuantConfig::int8());
  core::QuantizedLstmReference twin(cell, pruner);

  num::Rng rng(seed);
  std::vector<num::Matrix> inputs;
  inputs.reserve(8);
  for (int i = 0; i < 8; ++i) inputs.push_back(random_matrix(batch, dx, rng));

  num::Matrix h_s(batch, dh, 0.0f), c_s(batch, dh, 0.0f);
  num::Matrix h_d(batch, dh, 0.0f), c_d(batch, dh, 0.0f);
  num::Matrix h_t(batch, dh, 0.0f), c_t(batch, dh, 0.0f);

  bool exact = true;
  for (int t = 0; t < 8; ++t) {
    const num::Matrix& x = inputs[static_cast<std::size_t>(t) % inputs.size()];
    sparse.step(x, h_s, c_s);
    dense.step_dense(x, h_d, c_d);
    exact = exact && h_s == h_d && c_s == c_d;
    if (t < 3) {  // the naive twin is O(dh * (dx + dh)) per lane: cap it
      twin.step(x, h_t, c_t);
      exact = exact && h_s == h_t && c_s == c_t;
    }
  }
  sparse.reset_stats();

  std::size_t i = 0;
  Result r;
  r.sparse_us_per_step = time_us_per_step(steps, [&] {
    sparse.step(inputs[i++ % inputs.size()], h_s, c_s);
  });
  i = 0;
  r.dense_us_per_step = time_us_per_step(steps, [&] {
    dense.step_dense(inputs[i++ % inputs.size()], h_d, c_d);
  });

  r.sparsity_target = sparsity;
  r.batch = batch;
  r.wall_speedup = r.dense_us_per_step / r.sparse_us_per_step;
  r.observed_sparsity = sparse.stats().observed_sparsity();
  r.observed_lane_sparsity = sparse.stats().observed_lane_sparsity();
  r.mac_speedup = sparse.stats().state_speedup();
  r.bit_exact = exact;
  return r;
}

// Dense GMAC/s of one grid cell: every step multiplies a [B, dx+dh]
// activation block into the [4*dh, dx+dh] packed weights.
double dense_gmacs(const Result& r, num::Index dh, num::Index dx) {
  const double macs = static_cast<double>(r.batch) *
                      static_cast<double>(dx + dh) * 4.0 *
                      static_cast<double>(dh);
  return macs / (r.dense_us_per_step * 1000.0);
}

// The cell both throughput claims are read from: the hard-gate cell of
// the regression checker (batch 8, sparsity 0.5).
const Result* headline_cell(const std::vector<Result>& results) {
  for (const Result& r : results) {
    if (r.batch == 8 && r.sparsity_target == 0.5) return &r;
  }
  return results.empty() ? nullptr : &results.front();
}

void write_result_rows(std::FILE* f, const std::vector<Result>& results,
                       const char* indent) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "%s{\"sparsity\": %.2f, \"batch\": %lld, "
                 "\"sparse_us_per_step\": %.3f, \"dense_us_per_step\": %.3f, "
                 "\"wall_speedup\": %.3f, \"observed_sparsity\": %.4f, "
                 "\"observed_lane_sparsity\": %.4f, "
                 "\"mac_speedup\": %.3f, \"bit_exact\": %s}%s\n",
                 indent, r.sparsity_target, static_cast<long long>(r.batch),
                 r.sparse_us_per_step, r.dense_us_per_step, r.wall_speedup,
                 r.observed_sparsity, r.observed_lane_sparsity, r.mac_speedup,
                 r.bit_exact ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
}

void write_json(const std::string& path, num::Index dh, num::Index dx,
                num::Index steps, const std::vector<Result>& results,
                const std::vector<Result>& int8_results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sparse_inference\",\n");
  std::fprintf(f, "  \"kernel_backend\": \"%s\",\n",
               num::simd::active_backend().name);
  std::fprintf(f, "  \"dh\": %lld, \"dx\": %lld, \"steps\": %lld,\n",
               static_cast<long long>(dh), static_cast<long long>(dx),
               static_cast<long long>(steps));
  std::fprintf(f, "  \"results\": [\n");
  write_result_rows(f, results, "    ");
  std::fprintf(f, "  ]");
  if (!int8_results.empty()) {
    const Result* fp32_head = headline_cell(results);
    const Result* int8_head = headline_cell(int8_results);
    const double fp32_g = fp32_head ? dense_gmacs(*fp32_head, dh, dx) : 0.0;
    const double int8_g = int8_head ? dense_gmacs(*int8_head, dh, dx) : 0.0;
    std::fprintf(f, ",\n  \"int8\": {\n");
    std::fprintf(f, "    \"dense_fp32_gmacs\": %.3f,\n", fp32_g);
    std::fprintf(f, "    \"dense_int8_gmacs\": %.3f,\n", int8_g);
    std::fprintf(f, "    \"dense_int8_vs_fp32\": %.3f,\n",
                 fp32_g > 0.0 ? int8_g / fp32_g : 0.0);
    std::fprintf(f, "    \"results\": [\n");
    write_result_rows(f, int8_results, "      ");
    std::fprintf(f, "    ]\n  }");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto dh = static_cast<num::Index>(flags.get_int("dh", 512));
  const auto dx = static_cast<num::Index>(flags.get_int("dx", 64));
  const auto steps = std::max<num::Index>(
      1, static_cast<num::Index>(
             flags.get_int("steps", flags.has("quick") ? 30 : 200)));

  num::Rng rng(1234);
  nn::LstmCell cell(dx, dh, rng);

  bench::print_header("sparse step() vs dense step_dense() wall clock");
  std::printf("dh=%lld dx=%lld steps=%lld kernel_backend=%s\n",
              static_cast<long long>(dh), static_cast<long long>(dx),
              static_cast<long long>(steps),
              num::simd::active_backend().name);
  std::printf("%-10s %-6s %14s %14s %10s %10s %10s %10s %6s\n", "sparsity",
              "batch", "sparse us/st", "dense us/st", "wall x", "union sp",
              "lane sp", "mac x", "exact");

  auto print_row = [](const Result& r) {
    std::printf(
        "%-10.2f %-6lld %14.2f %14.2f %10.2f %10.3f %10.3f %10.2f %6s\n",
        r.sparsity_target, static_cast<long long>(r.batch),
        r.sparse_us_per_step, r.dense_us_per_step, r.wall_speedup,
        r.observed_sparsity, r.observed_lane_sparsity, r.mac_speedup,
        r.bit_exact ? "yes" : "NO");
  };

  std::vector<Result> results;
  for (const double sparsity : {0.5, 0.7, 0.9}) {
    for (const num::Index batch : {num::Index{1}, num::Index{8},
                                   num::Index{32}}) {
      const Result r = run_one(cell, sparsity, batch, steps,
                               static_cast<std::uint64_t>(
                                   sparsity * 100.0 + static_cast<double>(batch)));
      results.push_back(r);
      print_row(r);
    }
  }

  bench::print_header("int8 quantized step() vs step_dense() wall clock");
  std::printf("%-10s %-6s %14s %14s %10s %10s %10s %10s %6s\n", "sparsity",
              "batch", "sparse us/st", "dense us/st", "wall x", "union sp",
              "lane sp", "mac x", "exact");
  std::vector<Result> int8_results;
  for (const double sparsity : {0.5, 0.7, 0.9}) {
    for (const num::Index batch : {num::Index{1}, num::Index{8},
                                   num::Index{32}}) {
      const Result r = run_one_quant(
          cell, sparsity, batch, steps,
          static_cast<std::uint64_t>(sparsity * 100.0 +
                                     static_cast<double>(batch)));
      int8_results.push_back(r);
      print_row(r);
    }
  }
  if (const Result* fp32_head = headline_cell(results)) {
    if (const Result* int8_head = headline_cell(int8_results)) {
      const double fp32_g = dense_gmacs(*fp32_head, dh, dx);
      const double int8_g = dense_gmacs(*int8_head, dh, dx);
      std::printf(
          "\ndense throughput @ batch 8: fp32 %.2f GMAC/s, int8 %.2f GMAC/s "
          "(%.2fx)\n",
          fp32_g, int8_g, fp32_g > 0.0 ? int8_g / fp32_g : 0.0);
    }
  }

  write_json("BENCH_sparse_inference.json", dh, dx, steps, results,
             int8_results);

  bool all_exact = true;
  for (const Result& r : results) all_exact = all_exact && r.bit_exact;
  for (const Result& r : int8_results) all_exact = all_exact && r.bit_exact;
  if (!all_exact) {
    std::fprintf(stderr, "bit-exactness contract violated!\n");
    return 1;
  }
  return 0;
}
