// Ablation A3 — scratch accumulator width: the design stores partial
// sums in 16 x 12-bit SRAMs per PE. Narrower words saturate on long dot
// products; wider words cost SRAM area. This bench measures functional
// fidelity (cosine vs the float model) and saturation counts across
// widths on a realistic recurrent workload.
#include <cstdio>

#include "accel/lstm_accelerator.h"
#include "bench_util.h"
#include "num/rng.h"

int main(int argc, char** argv) {
  using namespace zss;
  const bench::Flags flags(argc, argv);
  const auto hidden = static_cast<num::Index>(flags.get_int("hidden", 100));
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 40));

  num::Rng rng(3);
  nn::LstmCell cell(16, hidden, rng);
  for (float& v : cell.wh().value.flat()) v *= 0.5f;  // trained-scale weights

  bench::print_header(
      "Ablation A3: scratch accumulator width (d_h = 100, 16-d input)");
  std::printf("%12s %10s %16s %18s\n", "width(bits)", "pre-shift",
              "fidelity(cos)", "saturation_events");

  struct Point {
    int bits;
    int shift;
    bool ideal;
  };
  const Point points[] = {{8, 6, false},  {10, 6, false}, {12, 6, false},
                          {14, 6, false}, {16, 4, false}, {20, 2, false},
                          {32, 0, true}};
  for (const auto& p : points) {
    accel::AcceleratorConfig cfg;
    accel::LstmAcceleratorOptions opt;
    opt.prune_threshold = 0.05f;
    if (p.ideal) {
      opt.ideal_accumulators = true;
    } else {
      cfg.scratch_bits = p.bits;
      cfg.accum_pre_shift = p.shift;
    }
    accel::LstmAccelerator accel(cfg, opt, cell);
    accel.reset(1);
    num::Rng xrng(11);
    for (num::Index t = 0; t < steps; ++t) {
      num::Matrix x(1, 16);
      for (float& v : x.flat()) {
        v = static_cast<float>(xrng.uniform(-1.0, 1.0));
      }
      accel.step(x);
    }
    std::printf("%12d %10d %16.4f %18lld\n", p.ideal ? 32 : p.bits,
                p.ideal ? 0 : p.shift, accel.fidelity_cosine(),
                static_cast<long long>(accel.saturation_events()));
  }

  std::printf(
      "\nreading: the paper's 12-bit/shift-6 point is the knee — 8-10 bit\n"
      "words saturate and corrupt the state, wider words buy little.\n");
  return 0;
}
