// Fig. 8 — accelerator performance (GOPS) for dense and sparse hidden
// states across the three tasks and batch sizes 1 / 8 / 16, at the
// paper's network dimensions.
//
// The simulator only needs the batch-intersected zero pattern of the
// stored state, so the paper dims run directly: sparse rows use the
// sweet-spot sparsities the paper measured (Fig. 7), synthesized as
// Bernoulli masks; dense rows skip nothing. Performance counts
// dense-equivalent ops (the convention ESE and this paper share).
#include <cstdio>
#include <vector>

#include "accel/report.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "bench_util.h"

namespace {

using namespace zss;
using accel::AcceleratorConfig;
using accel::RunTotals;
using accel::Scheduler;
using accel::WorkloadShape;

struct Row {
  const char* label;
  WorkloadShape shape;
  double sparsity;  // <0 means dense
  double paper_gops;
};

double simulate_gops(const Scheduler& sched, const WorkloadShape& shape,
                     double sparsity, num::Index steps, num::Rng& rng) {
  RunTotals totals;
  for (num::Index t = 0; t < steps; ++t) {
    if (sparsity < 0.0) {
      totals.add(sched.run_timestep_dense(shape), shape);
    } else {
      const auto mask =
          accel::mask_from_intersected_sparsity(shape, sparsity, rng);
      totals.add(sched.run_timestep(shape, mask), shape);
    }
  }
  return totals.gops(sched.config());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 20));

  const AcceleratorConfig cfg;
  Scheduler sched(cfg);
  num::Rng rng(1234);

  bench::print_header(
      "Fig. 8: accelerator performance (GOPS), dense vs sparse states");
  std::printf("accelerator: %lld PEs @ %.0f MHz, %lld weights/cycle, peak "
              "%.1f GOPS\n\n",
              static_cast<long long>(cfg.total_pes()), cfg.clock_hz / 1e6,
              static_cast<long long>(cfg.weights_per_cycle()),
              cfg.peak_gops());

  const std::vector<Row> rows = {
      {"PTB-Char  dense  batch 1", WorkloadShape::ptb_char(1), -1, 9.6},
      {"PTB-Char  dense  batch 8", WorkloadShape::ptb_char(8), -1, 76.4},
      {"PTB-Char  dense  batch 16", WorkloadShape::ptb_char(16), -1, 76.4},
      {"PTB-Char  sparse batch 1", WorkloadShape::ptb_char(1), 0.97, 314.7},
      {"PTB-Char  sparse batch 8", WorkloadShape::ptb_char(8), 0.81, 395.5},
      {"PTB-Char  sparse batch 16", WorkloadShape::ptb_char(16), 0.66, 223.9},
      {"PTB-Word  dense  batch 1", WorkloadShape::ptb_word(1), -1, 9.6},
      {"PTB-Word  dense  batch 8", WorkloadShape::ptb_word(8), -1, 76.2},
      {"PTB-Word  dense  batch 16", WorkloadShape::ptb_word(16), -1, 76.2},
      {"PTB-Word  sparse batch 1", WorkloadShape::ptb_word(1), 0.93, 17.9},
      {"PTB-Word  sparse batch 8", WorkloadShape::ptb_word(8), 0.63, 110.8},
      {"PTB-Word  sparse batch 16", WorkloadShape::ptb_word(16), 0.41, 95.6},
      {"MNIST     dense  batch 1", WorkloadShape::mnist(1), -1, 9.6},
      {"MNIST     dense  batch 8", WorkloadShape::mnist(8), -1, 74.3},
      {"MNIST     dense  batch 16", WorkloadShape::mnist(16), -1, 74.3},
      {"MNIST     sparse batch 1", WorkloadShape::mnist(1), 0.83, 50.5},
      {"MNIST     sparse batch 8", WorkloadShape::mnist(8), 0.55, 154.3},
      {"MNIST     sparse batch 16", WorkloadShape::mnist(16), 0.43, 124.9},
  };

  for (const Row& row : rows) {
    const double gops =
        simulate_gops(sched, row.shape, row.sparsity, steps, rng);
    bench::print_row(row.label, gops, row.paper_gops);
  }

  std::printf(
      "\nmax sparse/dense speedup (PTB-Char batch 1): %.1fx "
      "(paper: up to 5.2x vs the most energy-efficient dense point,\n"
      " i.e. 395.5/76.4 at batch 8; 32.8x vs dense batch 1)\n",
      simulate_gops(sched, WorkloadShape::ptb_char(8), 0.81, steps, rng) /
          simulate_gops(sched, WorkloadShape::ptb_char(8), -1, steps, rng));
  return 0;
}
