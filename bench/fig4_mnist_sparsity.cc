// Fig. 4 — sequential image classification: misclassification error rate
// (MER, %) on the test set versus hidden-state sparsity degree.
//
// Paper setup: MNIST scanline pixels (784 steps), LSTM d_h = 100, Adam
// lr 1e-3, softmax classifier on the final state. Result: MER flat to
// ~80% sparsity.
//
// Protocol: this figure follows the paper exactly — "since the pruning
// threshold is empirical", each point trains FROM SCRATCH with a fixed
// threshold T and reports the *measured* sparsity degree that T
// produces. (The LM figures use the controlled target-sparsity mode
// instead; both modes live in core::PrunerConfig.) The task is
// recurrence-critical — a single pixel enters per step, so the state
// carries everything — which makes it the hardest of the three
// workloads to prune at laptop dimensions; see EXPERIMENTS.md for the
// capacity-scaling discussion.
//
// Laptop defaults use the synthetic glyph set at 10x10; --side=28
// --hidden=100 --train=50000 approaches the paper scale.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/classifier_model.h"
#include "core/sweet_spot.h"
#include "data/glyph_images.h"

namespace {

using namespace zss;

struct Point {
  double sparsity;
  double mer;
};

Point run_point(const data::GlyphImages& images, float threshold,
                num::Index hidden, num::Index batch, int epochs) {
  core::ClassifierConfig cfg;
  cfg.hidden = hidden;
  if (threshold > 0.0f) cfg.pruner = core::PrunerConfig::fixed(threshold);
  core::PrunedLstmClassifier model(cfg);
  nn::Adam adam(1e-3f);  // the paper's step rule (§II-B.3)
  data::ImageBatcher batcher(images.train_images(), images.train_labels(),
                             batch);
  num::Rng rng(17);
  for (int e = 0; e < epochs; ++e) {
    batcher.shuffle(rng);
    for (num::Index b = 0; b < batcher.num_batches(); ++b) {
      (void)model.train_batch(batcher.batch(b), adam, 5.0f);
    }
  }
  const auto eval = model.evaluate(images.test_images(), images.test_labels());
  return {eval.state_sparsity, eval.error_rate_percent};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  data::GlyphConfig dcfg;
  dcfg.side = flags.get_int("side", 10);
  dcfg.train_count = flags.get_int("train", 700);
  dcfg.test_count = flags.get_int("test", 200);
  dcfg.noise_stddev = flags.get("noise", 0.02);
  dcfg.jitter_fraction = flags.get("jitter", 0.05);
  const auto images = data::GlyphImages::generate(dcfg);

  const auto hidden = static_cast<num::Index>(flags.get_int("hidden", 48));
  const auto batch = static_cast<num::Index>(flags.get_int("batch", 20));
  const int epochs = static_cast<int>(flags.get_int("epochs", 15));

  bench::print_header(
      "Fig. 4: sequential image classification, MER vs sparsity degree "
      "(synthetic MNIST)");
  std::printf("config: side=%ld (%ld steps) hidden=%ld batch=%ld epochs=%d\n",
              static_cast<long>(dcfg.side),
              static_cast<long>(images.pixels()), static_cast<long>(hidden),
              static_cast<long>(batch), epochs);
  std::printf("paper (MNIST, d_h=100): MER ~1.8%% flat to ~80%% sparsity\n");
  std::printf("protocol: fixed empirical threshold T per point (paper "
              "§II-B); sparsity is measured, not set\n\n");
  std::printf("%-10s %-20s %10s\n", "T", "sparsity_degree(%)", "test_MER_%");

  const std::vector<float> thresholds = {0.0f,  0.03f, 0.06f, 0.1f,
                                         0.15f, 0.25f, 0.4f};
  std::vector<core::SweepPoint> curve;
  for (float t : thresholds) {
    const Point p = run_point(images, t, hidden, batch, epochs);
    curve.push_back({p.sparsity, p.mer});
    std::printf("%-10.2f %-20.1f %10.2f\n", t, p.sparsity * 100.0, p.mer);
    std::fflush(stdout);
  }

  const auto spot = core::find_sweet_spot(curve, 0.30);
  if (spot.found) {
    std::printf("\nsweet spot: %.0f%% sparsity at MER %.2f%% "
                "(paper: ~80%% with no MER loss at d_h=100 / full MNIST)\n",
                spot.sparsity * 100.0, spot.metric);
  }
  return 0;
}
