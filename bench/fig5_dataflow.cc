// Fig. 5 — the worked dataflow example: a 4x6 weight matrix times a
// 6-element vector (one zero element) on 4 PEs, under (a) unlimited
// bandwidth, (b) 2 weights/cycle, (c) batch 2, and (d) the
// batch-intersection skip rule.
#include <cstdio>
#include <vector>

#include "accel/scheduler.h"
#include "bench_util.h"

namespace {

using namespace zss;
using accel::AcceleratorConfig;
using accel::Scheduler;

AcceleratorConfig toy(double gbps) {
  AcceleratorConfig cfg;
  cfg.tiles = 1;
  cfg.pes_per_tile = 4;
  cfg.dram_gbps = gbps;
  return cfg;
}

void report(const char* part, const accel::MatvecStats& stats,
            num::Index fill, num::Index paper_cycles) {
  std::printf(
      "%-44s kept %lld/%lld positions, %lld cycles (+%lld fill)%s\n", part,
      static_cast<long long>(stats.positions_kept),
      static_cast<long long>(stats.positions_total),
      static_cast<long long>(stats.cycles), static_cast<long long>(fill),
      paper_cycles > 0
          ? (std::string("  [figure shows ") + std::to_string(paper_cycles) +
             " CCs dense]")
                .c_str()
          : "");
}

}  // namespace

int main() {
  bench::print_header("Fig. 5: vector-matrix dataflow example (4x6, 4 PEs)");

  // h = [h0, h1, h2, h3, 0, h5]: position 4 is zero.
  const std::vector<bool> lane1 = {true, true, true, true, false, true};
  const std::vector<bool> dense1(6, true);

  {
    Scheduler sched(toy(12.8));  // >= 4 weights/cycle: unlimited for 4 PEs
    report("(a) unlimited bandwidth, batch 1, skip:",
           sched.matvec(4, lane1, 1), 0, 6);
  }
  {
    Scheduler sched(toy(4.8));  // 2 weights + 1 input per cycle
    report("(b) limited bandwidth, batch 1, dense:",
           sched.matvec(4, dense1, 1), 0, 12);
    report("(b) limited bandwidth, batch 1, skip:",
           sched.matvec(4, lane1, 1), 0, 0);
  }
  {
    Scheduler sched(toy(4.8));
    const std::vector<bool> dense2(12, true);
    report("(c) limited bandwidth, batch 2, dense:",
           sched.matvec(4, dense2, 2), 1, 13);
    // (d): lane 0 zero at {1,4}, lane 1 zero at {3,4}.
    std::vector<bool> mixed(12, true);
    mixed[1 * 2 + 0] = false;
    mixed[3 * 2 + 1] = false;
    mixed[4 * 2 + 0] = false;
    mixed[4 * 2 + 1] = false;
    const auto stats = sched.matvec(4, mixed, 2);
    report("(d) batch 2, skip only all-zero positions:", stats, 1, 0);
    std::printf(
        "    effectual MACs %lld of %lld issued — zero lanes at kept "
        "positions cannot be skipped (shared weights)\n",
        static_cast<long long>(stats.macs_effectual),
        static_cast<long long>(stats.macs_issued));
  }
  return 0;
}
