// Ablation A1 — the paper's central trade-off, swept finely: larger
// batches raise PE utilization (dense GOPS) but destroy intersected
// sparsity (iid element sparsity p gives p^B skippable positions), so
// sparse GOPS peaks at an intermediate batch.
#include <cstdio>

#include "accel/report.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace zss;
  const bench::Flags flags(argc, argv);
  const double element_sparsity = flags.get("element-sparsity", 0.97);
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 20));

  const accel::AcceleratorConfig cfg;
  accel::Scheduler sched(cfg);
  num::Rng rng(42);

  bench::print_header(
      "Ablation A1: batch size vs utilization vs intersected sparsity "
      "(PTB-Char, iid element sparsity)");
  std::printf("element sparsity per lane: %.0f%%\n\n",
              element_sparsity * 100.0);
  std::printf("%6s %22s %12s %12s %14s\n", "batch", "intersected_sparsity",
              "dense_GOPS", "sparse_GOPS", "PE_util_dense");

  for (num::Index batch : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    const auto shape = accel::WorkloadShape::ptb_char(batch);
    accel::RunTotals dense;
    accel::RunTotals sparse;
    double util = 0.0;
    double sparsity_sum = 0.0;
    for (num::Index t = 0; t < steps; ++t) {
      const auto dstats = sched.run_timestep_dense(shape);
      dense.add(dstats, shape);
      util = dstats.pe_utilization();
      const auto mask =
          accel::mask_from_element_sparsity(shape, element_sparsity, rng);
      sparsity_sum += accel::intersected_sparsity(shape, mask);
      sparse.add(sched.run_timestep(shape, mask), shape);
    }
    std::printf("%6lld %21.1f%% %12.1f %12.1f %13.1f%%\n",
                static_cast<long long>(batch),
                sparsity_sum / static_cast<double>(steps) * 100.0,
                dense.gops(cfg), sparse.gops(cfg), util * 100.0);
  }

  std::printf(
      "\nreading: dense GOPS saturates by batch 8; sparse GOPS collapses\n"
      "towards the dense curve as p^B kills the skip opportunity — the\n"
      "reason the paper's Fig. 7/8 stop at batch 16.\n");
  return 0;
}
