// Fig. 7 — sparsity degree of the hidden state vector over batch sizes
// 1 / 8 / 16 at the per-task sweet spots.
//
// In the paper's accelerator a position can be skipped only when it is
// zero in EVERY batch lane (Fig. 5(d)), so the exploitable sparsity
// degrades as batch grows; the per-lane column printed alongside is the
// batch-independent sparsity the software engine's per-lane skip path
// exploits instead. The paper measures (batch 1/8/16):
//   PTB-Char  97 / 81 / 66 %
//   PTB-Word  93 / 63 / 41 %
//   MNIST     83 / 55 / 43 %
//
// This bench trains sweet-spot models on the synthetic substitutes at
// laptop dims and measures the same quantity with the SparsityMeter.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/classifier_model.h"
#include "core/lm_model.h"
#include "data/char_corpus.h"
#include "data/glyph_images.h"
#include "data/word_corpus.h"
#include "sparse/sparsity_report.h"

namespace {

using namespace zss;

struct TaskRow {
  const char* name;
  double paper[3];  // batch 1 / 8 / 16
  double measured[3];
  double lane[3];  // per-lane (element) sparsity at the same batches
};

void print_rows(const TaskRow* rows, int n) {
  std::printf("%-10s %24s %24s %24s\n", "", "intersected (1/8/16)",
              "per-lane (1/8/16)", "paper intersected");
  for (int i = 0; i < n; ++i) {
    std::printf("%-10s %7.1f %7.1f %7.1f  %7.1f %7.1f %7.1f  %6.1f %6.1f %6.1f\n",
                rows[i].name, rows[i].measured[0] * 100.0,
                rows[i].measured[1] * 100.0, rows[i].measured[2] * 100.0,
                rows[i].lane[0] * 100.0, rows[i].lane[1] * 100.0,
                rows[i].lane[2] * 100.0, rows[i].paper[0], rows[i].paper[1],
                rows[i].paper[2]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int epochs = static_cast<int>(flags.get_int("epochs", 2));
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 150));

  bench::print_header(
      "Fig. 7: batch-intersected state sparsity at the sweet spots");

  TaskRow rows[3] = {
      {"PTB-Char", {97, 81, 66}, {}, {}},
      {"PTB-Word", {93, 63, 41}, {}, {}},
      {"MNIST", {83, 55, 43}, {}, {}},
  };

  // ---- Char model at the 97% sweet spot ----
  {
    data::CharCorpusConfig dcfg;
    dcfg.train_chars = 30000;
    dcfg.valid_chars = 3000;
    dcfg.test_chars = 6000;
    const auto corpus = data::CharCorpus::generate(dcfg);
    core::LmConfig cfg;
    cfg.vocab = data::CharCorpus::kVocab;
    cfg.hidden = static_cast<num::Index>(flags.get_int("hidden_char", 64));
    cfg.pruner = core::PrunerConfig::target(0.97);
    core::PrunedLstmLm model(cfg);
    nn::Adam adam(2e-3f);
    data::LmBatcher batcher(corpus.train(), 8, 25);
    for (int e = 0; e < epochs; ++e) {
      for (num::Index w = 0; w < batcher.num_windows(); ++w) {
        (void)model.train_window(batcher.window(w), adam, 5.0f);
      }
    }
    const num::Index batches[3] = {1, 8, 16};
    for (int i = 0; i < 3; ++i) {
      sparse::SparsityMeter meter;
      (void)model.collect_states(corpus.test(), batches[i], steps, meter);
      rows[0].measured[i] = meter.mean_sparsity();
      rows[0].lane[i] = meter.mean_element_sparsity();
    }
  }

  // ---- Word model at the 93% sweet spot ----
  {
    data::WordCorpusConfig dcfg;
    dcfg.vocab_size = 1000;
    dcfg.train_tokens = 22000;
    dcfg.valid_tokens = 2000;
    dcfg.test_tokens = 6000;
    const auto corpus = data::WordCorpus::generate(dcfg);
    core::LmConfig cfg;
    cfg.vocab = corpus.vocab_size();
    cfg.embed_dim = 48;
    cfg.hidden = static_cast<num::Index>(flags.get_int("hidden_word", 48));
    cfg.dropout = 0.5;
    cfg.pruner = core::PrunerConfig::target(0.93);
    core::PrunedLstmLm model(cfg);
    nn::Sgd sgd(1.0f);
    data::LmBatcher batcher(corpus.train(), 10, 35);
    for (int e = 0; e < epochs; ++e) {
      for (num::Index w = 0; w < batcher.num_windows(); ++w) {
        (void)model.train_window(batcher.window(w), sgd, 5.0f);
      }
      sgd.decay(1.2f);
    }
    const num::Index batches[3] = {1, 8, 16};
    for (int i = 0; i < 3; ++i) {
      sparse::SparsityMeter meter;
      (void)model.collect_states(corpus.test(), batches[i], steps, meter);
      rows[1].measured[i] = meter.mean_sparsity();
      rows[1].lane[i] = meter.mean_element_sparsity();
    }
  }

  // ---- MNIST model at the 83% sweet spot ----
  {
    data::GlyphConfig dcfg;
    dcfg.side = 12;
    dcfg.train_count = 600;
    dcfg.test_count = 200;
    const auto images = data::GlyphImages::generate(dcfg);
    core::ClassifierConfig cfg;
    cfg.hidden = static_cast<num::Index>(flags.get_int("hidden_mnist", 36));
    cfg.pruner = core::PrunerConfig::target(0.83);
    core::PrunedLstmClassifier model(cfg);
    nn::Adam adam(1e-3f);
    data::ImageBatcher batcher(images.train_images(), images.train_labels(),
                               20);
    num::Rng rng(5);
    for (int e = 0; e < epochs + 2; ++e) {
      batcher.shuffle(rng);
      for (num::Index b = 0; b < batcher.num_batches(); ++b) {
        (void)model.train_batch(batcher.batch(b), adam, 5.0f);
      }
    }
    const num::Index batches[3] = {1, 8, 16};
    for (int i = 0; i < 3; ++i) {
      num::Matrix lanes(batches[i], images.pixels());
      for (num::Index b = 0; b < batches[i]; ++b) {
        auto dst = lanes.row(b);
        auto src = images.test_images().row(b);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      sparse::SparsityMeter meter;
      model.collect_states(lanes, meter);
      rows[2].measured[i] = meter.mean_sparsity();
      rows[2].lane[i] = meter.mean_element_sparsity();
    }
  }

  std::printf("\n");
  print_rows(rows, 3);
  std::printf(
      "\nexpected shape: the intersected column decreases monotonically\n"
      "with batch size on every task (the paper's Fig. 7), while the\n"
      "per-lane column stays flat — that flat curve is the sparsity the\n"
      "engine's per-lane batched skip path (num::sparse_accum_rows_multi)\n"
      "actually exploits at any batch size. (Absolute values differ from\n"
      "the paper because the corpora are synthetic and dims are reduced;\n"
      "see EXPERIMENTS.md)\n");
  return 0;
}
