// Ablation A4 — PE array shape: more PEs raise peak GOPS but, under the
// fixed 51.2 Gbps weight stream, only batched or compute-bound workloads
// can feed them. This sweep shows why 4 x 48 is a balanced choice for
// the paper's bandwidth budget.
#include <cstdio>

#include "accel/report.h"
#include "accel/scheduler.h"
#include "accel/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace zss;
  const bench::Flags flags(argc, argv);
  const auto steps = static_cast<num::Index>(flags.get_int("steps", 20));

  bench::print_header(
      "Ablation A4: PE array shape at fixed 51.2 Gbps (PTB-Char)");
  std::printf("%14s %10s %16s %16s %16s\n", "tiles x PEs", "peak",
              "dense b8 GOPS", "sparse b8 GOPS", "PE util (dense)");

  struct Shape {
    num::Index tiles;
    num::Index pes;
  };
  for (const Shape s : {Shape{2, 24}, Shape{4, 24}, Shape{4, 48},
                        Shape{4, 96}, Shape{8, 96}}) {
    accel::AcceleratorConfig cfg;
    cfg.tiles = s.tiles;
    cfg.pes_per_tile = s.pes;
    accel::Scheduler sched(cfg);
    num::Rng rng(9);
    const auto shape = accel::WorkloadShape::ptb_char(8);
    accel::RunTotals dense;
    accel::RunTotals sparse;
    double util = 0.0;
    for (num::Index t = 0; t < steps; ++t) {
      const auto dstats = sched.run_timestep_dense(shape);
      util = dstats.pe_utilization();
      dense.add(dstats, shape);
      const auto mask =
          accel::mask_from_intersected_sparsity(shape, 0.81, rng);
      sparse.add(sched.run_timestep(shape, mask), shape);
    }
    std::printf("%8lld x %-4lld %9.1f %16.1f %16.1f %15.1f%%\n",
                static_cast<long long>(s.tiles),
                static_cast<long long>(s.pes), cfg.peak_gops(),
                dense.gops(cfg), sparse.gops(cfg), util * 100.0);
  }

  std::printf(
      "\nreading: below 4x48, compute caps batch-8 throughput; above it,\n"
      "the fixed weight stream cannot feed the extra PEs at batch 8 and\n"
      "utilization falls — 4x48 matches 24 weights/cycle x 8 batches.\n");
  return 0;
}
