// Serving throughput and latency across shard count, max-batch and
// sparsity — the sizing data behind docs/serving.md.
//
// Closed-loop drive: all requests are queued up front, then the pool is
// drained with one thread per shard. Two throughputs are reported:
//
//   * wall_rps      — requests / wall-clock of the drain. On a machine
//                     with >= shards cores this is the real number; on
//                     fewer cores the shard threads serialize.
//   * capacity_rps  — requests / max per-shard *CPU time* (the critical
//                     path). Thread CPU time does not count time spent
//                     descheduled, so this is the throughput the shard
//                     layout sustains once cores match shards — it is
//                     what wall_rps converges to there, and what
//                     hash-shard balance actually determines, so it is
//                     the number the shard-scaling acceptance bar
//                     reads. The JSON records hardware_concurrency so a
//                     reader can tell which regime a run was in.
//
// Latency is service latency: the wall-clock of the engine step (plus
// gather/scatter) that served each request — queueing delay in a
// closed-loop drive is an artifact of the drive, not of the system.
//
// The live-mode section measures the opposite regime: requests are
// submitted open-loop (paced by --live-gap-us) through the persistent
// worker loop (serve/worker.h), and latency is end-to-end — arrival
// stamp to response delivery, queueing and batching delay *included* —
// which is the number a latency SLO is written against.
//
// The tiering section drives the durable spill tier (src/store/): a
// session population several times the RAM cap, so most re-arrivals
// come back from disk. It reports hot/warm/cold hit rates (resident /
// restored-from-spill / created-fresh per request) and, from a direct
// SegmentStore micro-loop, cold-restore latency and bitwise round-trip
// fidelity — the numbers check_bench_regression.py gates (restore must
// stay bit-exact; cold-restore latency may drift 20% before a warning).
//
// Usage: bench_serving [--dh=512] [--dx=64] [--sessions=32]
//                      [--requests=N] [--live-gap-us=G] [--quick]
// Writes BENCH_serving.json into the working directory.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "num/simd/backend.h"
#include "serve/frontend.h"
#include "serve/model.h"
#include "serve/protocol.h"
#include "serve/worker.h"
#include "store/io.h"
#include "store/segment_store.h"

namespace {

using namespace zss;

struct Result {
  num::Index shards = 0;
  num::Index max_batch = 0;
  double sparsity_target = 0.0;
  float threshold = 0.0f;
  num::Index requests = 0;
  double mean_batch = 0.0;
  double observed_sparsity = 0.0;       // union (batch-intersected) view
  double observed_lane_sparsity = 0.0;  // what the per-lane skip exploits
  double wall_ms = 0.0;
  double wall_rps = 0.0;
  double capacity_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct LiveResult {
  num::Index shards = 0;
  num::Index max_batch = 0;
  double sparsity_target = 0.0;
  num::Index requests = 0;
  std::int64_t gap_us = 0;       // nominal open-loop pacing gap
  double offered_rps = 0.0;      // realized offered load (from stamps)
  double wall_ms = 0.0;
  double rps = 0.0;              // served / wall
  double mean_batch = 0.0;
  double p50_us = 0.0;           // end-to-end: arrival -> delivery
  double p99_us = 0.0;
};

struct FrontendResult {
  num::Index shards = 0;
  num::Index connections = 0;   // concurrently open throughout the run
  num::Index reqs_per_conn = 0;
  double wall_ms = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;  // per-request RTT through the socket, mux included
  double p99_us = 0.0;
  std::uint64_t misrouted = 0;  // ok lines delivered to the wrong connection
  std::uint64_t lost = 0;       // requests never answered before the deadline
  bool ok = false;              // setup succeeded and every conn connected
};

struct StackedResult {
  num::Index layers = 0;
  num::Index shards = 0;
  num::Index max_batch = 0;
  num::Index requests = 0;
  bool pipeline = false;
  double wall_ms = 0.0;
  double wall_rps = 0.0;
  double capacity_rps = 0.0;
  /// Per-session digests identical to the sequential 1-shard reference
  /// run of the same model — the pipelined wavefront and any shard
  /// count must reproduce the reference bit-for-bit.
  bool bit_exact = false;
};

struct TieringResult {
  bool encoded = false;
  num::Index sessions = 0;
  num::Index max_sessions = 0;  // per shard (RAM cap)
  num::Index requests = 0;
  double hot_rate = 0.0;   // served by a resident session
  double warm_rate = 0.0;  // restored from the spill tier
  double cold_rate = 0.0;  // created fresh (first touch)
  std::uint64_t spilled = 0;
  std::uint64_t restored = 0;
  std::uint64_t restore_corrupt = 0;
  bool restore_bit_exact = false;
  double cold_restore_p50_us = 0.0;
  double cold_restore_p99_us = 0.0;
};

struct RecoveryResult {
  std::string journal_sync;   // "batch" | "none"
  num::Index sessions = 0;
  num::Index requests = 0;    // total workload (prefix + re-driven suffix)
  double baseline_rps = 0.0;  // same drive, durability off
  double journal_rps = 0.0;   // with the write-ahead journal committing
  double journal_ratio = 0.0; // journal_rps / baseline_rps (the WAL tax)
  double recovery_wall_ms = 0.0;  // restart: open + replay, to serve-ready
  std::uint64_t recovered_sessions = 0;
  std::uint64_t recovered_records = 0;
  /// The crash-recovery contract end to end on the real filesystem:
  /// drive a prefix, drop the pool cold (nothing flushed or closed),
  /// restart, re-drive each session's uncommitted suffix, and the
  /// final digest table equals the uninterrupted run's bit for bit.
  bool recovered_bit_exact = false;
};

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

/// Serving needs a batch-composition-independent pruner, so derive the
/// fixed threshold that realizes `sparsity` for this cell: run a short
/// batch-of-one probe in target-sparsity mode and export its effective
/// threshold (the documented StatePruner::effective_threshold use).
float calibrate_threshold(const nn::LstmCell& cell, double sparsity,
                          num::Rng& rng) {
  const core::StatePruner probe_pruner(core::PrunerConfig::target(sparsity));
  core::SparseLstmEngine probe(cell, probe_pruner);
  num::Matrix h(1, cell.hidden_dim(), 0.0f), c(1, cell.hidden_dim(), 0.0f);
  num::Matrix x(1, cell.input_dim());
  for (int t = 0; t < 20; ++t) {
    x.fill(0.0f);
    x(0, rng.below(cell.input_dim())) = 1.0f;
    probe.step(x, h, c);
  }
  // h is pruned storage; measure the threshold on the matching dense
  // state by one more un-pruned probe step.
  const core::StatePruner none(core::PrunerConfig::none());
  core::SparseLstmEngine dense_probe(cell, none);
  num::Matrix hd = h, cd = c;
  x.fill(0.0f);
  x(0, 0) = 1.0f;
  dense_probe.step(x, hd, cd);
  return probe_pruner.effective_threshold(hd);
}

Result run_config(const nn::LstmCell& cell, float threshold,
                  double sparsity_target, num::Index shards,
                  num::Index max_batch, num::Index sessions,
                  num::Index requests, std::uint64_t seed) {
  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  serve::PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 0;  // closed loop: batches close on size
  serve::EnginePool pool(cell, pruner, config);

  auto enqueue_all = [&] {
    num::Rng tokens(seed + 1);
    for (num::Index i = 0; i < requests; ++i) {
      serve::Request r;
      // Round-robin sessions: every client is equally active, so the
      // only load imbalance left is the hash's session->shard split.
      r.session = static_cast<serve::SessionId>(i % sessions) + 1;
      r.token = tokens.below(cell.input_dim());
      r.arrival_us = 0;
      r.seq = static_cast<std::uint64_t>(i);
      pool.enqueue(r);
    }
  };

  // Warm-up drain: create every session, fill every workspace, reach
  // the pruned steady state — then start the measurement epoch.
  std::vector<serve::ResponseSink> warm_sinks(
      static_cast<std::size_t>(shards), [](const serve::Response&) {});
  enqueue_all();
  pool.drain_parallel(0, warm_sinks);
  pool.reset_stats();

  // Measured drain, one latency log per shard (thread-private).
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(shards));
  std::vector<serve::ResponseSink> sinks;
  for (num::Index s = 0; s < shards; ++s) {
    auto& log = latencies[static_cast<std::size_t>(s)];
    log.reserve(static_cast<std::size_t>(requests));
    sinks.emplace_back([&log](const serve::Response& r) {
      log.push_back(r.service_us);
    });
  }
  enqueue_all();
  const auto t0 = std::chrono::steady_clock::now();
  const num::Index served = pool.drain_parallel(0, sinks);
  const auto t1 = std::chrono::steady_clock::now();
  ZSS_ENSURES(served == requests);

  Result r;
  r.shards = shards;
  r.max_batch = max_batch;
  r.sparsity_target = sparsity_target;
  r.threshold = threshold;
  r.requests = requests;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.wall_rps = static_cast<double>(requests) / (r.wall_ms / 1e3);

  double max_busy_us = 0.0;
  num::Index batches = 0;
  num::Index kept = 0, positions = 0;
  num::Index lane_kept = 0, lane_positions = 0;
  for (num::Index s = 0; s < shards; ++s) {
    max_busy_us = std::max(max_busy_us, pool.shard(s).stats().cpu_us);
    batches += pool.shard(s).stats().batches;
    kept += pool.shard(s).engine().stats().kept_positions;
    positions += pool.shard(s).engine().stats().positions;
    lane_kept += pool.shard(s).engine().stats().lane_kept_positions;
    lane_positions += pool.shard(s).engine().stats().lane_positions;
  }
  r.capacity_rps = max_busy_us == 0.0
                       ? 0.0
                       : static_cast<double>(requests) / (max_busy_us / 1e6);
  r.mean_batch = batches == 0 ? 0.0
                              : static_cast<double>(requests) /
                                    static_cast<double>(batches);
  r.observed_sparsity =
      positions == 0 ? 0.0
                     : 1.0 - static_cast<double>(kept) /
                                 static_cast<double>(positions);
  r.observed_lane_sparsity =
      lane_positions == 0 ? 0.0
                          : 1.0 - static_cast<double>(lane_kept) /
                                      static_cast<double>(lane_positions);

  std::vector<double> all;
  for (auto& log : latencies) all.insert(all.end(), log.begin(), log.end());
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  return r;
}

/// Open-loop live measurement through the persistent worker loop:
/// p50/p99 are end-to-end (queueing delay included), the regime the
/// closed-loop grid above deliberately excludes.
LiveResult run_live_config(const nn::LstmCell& cell, float threshold,
                           double sparsity_target, num::Index shards,
                           num::Index max_batch, num::Index sessions,
                           num::Index requests, std::int64_t gap_us,
                           std::uint64_t seed) {
  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  serve::PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 200;
  serve::EnginePool pool(cell, pruner, config);

  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(requests));
  serve::LiveServer* server_ptr = nullptr;
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    const double lat =
        static_cast<double>(server_ptr->now_us() - r.arrival_us);
    std::lock_guard<std::mutex> lock(mu);
    latencies.push_back(lat);
  };
  serve::LiveServer server(pool, sink);
  server_ptr = &server;

  // Warm-up burst: create sessions, fill workspaces, settle the ring.
  num::Rng tokens(seed);
  for (num::Index i = 0; i < sessions; ++i) {
    server.submit(static_cast<serve::SessionId>(i % sessions) + 1,
                  tokens.below(cell.input_dim()));
  }
  while (server.responded() < static_cast<std::uint64_t>(sessions)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    latencies.clear();
  }

  // Paced open loop: one producer, nominal inter-arrival gap_us. The
  // realized gap (sleep granularity included) is reported as
  // offered_rps so a reader can see what load was actually applied.
  const std::int64_t t0 = server.now_us();
  const auto wall0 = std::chrono::steady_clock::now();
  for (num::Index i = 0; i < requests; ++i) {
    server.submit(static_cast<serve::SessionId>(i % sessions) + 1,
                  tokens.below(cell.input_dim()));
    if (gap_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
    }
  }
  const std::int64_t t1 = server.now_us();
  server.shutdown();
  const auto wall1 = std::chrono::steady_clock::now();

  LiveResult r;
  r.shards = shards;
  r.max_batch = max_batch;
  r.sparsity_target = sparsity_target;
  r.requests = requests;
  r.gap_us = gap_us;
  r.offered_rps = t1 == t0 ? 0.0
                           : static_cast<double>(requests) /
                                 (static_cast<double>(t1 - t0) / 1e6);
  r.wall_ms = std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  r.rps = static_cast<double>(requests) / (r.wall_ms / 1e3);
  num::Index batches = 0, served = 0;
  for (num::Index s = 0; s < shards; ++s) {
    batches += pool.shard(s).stats().batches;
    served += pool.shard(s).stats().requests;
  }
  r.mean_batch = batches == 0 ? 0.0
                              : static_cast<double>(served) /
                                    static_cast<double>(batches);
  std::lock_guard<std::mutex> lock(mu);
  r.p50_us = percentile(latencies, 0.50);
  r.p99_us = percentile(latencies, 0.99);
  return r;
}

/// One stacked-serving configuration: drain the same request stream
/// through an L-layer ServeModel with the sequential or the
/// layer-pipelined (wavefront) flush, one thread per shard. Per-session
/// digests are folded in the sinks and merged (sessions are pinned, so
/// the per-shard tables are disjoint); the caller compares them against
/// the sequential 1-shard reference for bit-exactness.
StackedResult run_stacked_config(const serve::ServeModel& model,
                                 num::Index input_dim, num::Index layers,
                                 num::Index shards, num::Index max_batch,
                                 bool pipeline, num::Index sessions,
                                 num::Index requests, std::uint64_t seed,
                                 serve::DigestTable& digests) {
  serve::PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 0;
  config.pipeline = pipeline;
  serve::EnginePool pool(model, config);

  auto enqueue_all = [&] {
    num::Rng tokens(seed + 1);
    for (num::Index i = 0; i < requests; ++i) {
      serve::Request r;
      r.session = static_cast<serve::SessionId>(i % sessions) + 1;
      r.token = tokens.below(input_dim);
      r.arrival_us = 0;
      r.seq = static_cast<std::uint64_t>(i);
      pool.enqueue(r);
    }
  };

  // Warm-up drain (same stream: the digests cover warm-up + measured
  // epoch identically in every configuration).
  std::vector<serve::DigestTable> tables(static_cast<std::size_t>(shards));
  std::vector<serve::ResponseSink> sinks;
  for (num::Index s = 0; s < shards; ++s) {
    auto& table = tables[static_cast<std::size_t>(s)];
    sinks.emplace_back([&table](const serve::Response& r) {
      serve::fold_response(table, r);
    });
  }
  enqueue_all();
  pool.drain_parallel(0, sinks);
  pool.reset_stats();

  enqueue_all();
  const auto t0 = std::chrono::steady_clock::now();
  const num::Index served = pool.drain_parallel(0, sinks);
  const auto t1 = std::chrono::steady_clock::now();
  ZSS_ENSURES(served == requests);
  for (const serve::DigestTable& t : tables) {
    digests.insert(t.begin(), t.end());
  }

  StackedResult r;
  r.layers = layers;
  r.shards = shards;
  r.max_batch = max_batch;
  r.requests = requests;
  r.pipeline = pipeline;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.wall_rps = static_cast<double>(requests) / (r.wall_ms / 1e3);
  double max_busy_us = 0.0;
  for (num::Index s = 0; s < shards; ++s) {
    max_busy_us = std::max(max_busy_us, pool.shard(s).stats().cpu_us);
  }
  r.capacity_rps = max_busy_us == 0.0
                       ? 0.0
                       : static_cast<double>(requests) / (max_busy_us / 1e6);
  return r;
}

/// Multi-connection live measurement through the epoll front end: one
/// bench thread muxes `connections` real sockets (half UNIX, half TCP)
/// with poll(), each connection running a closed loop of window 1 on
/// its own session. Latency is the full per-request round trip —
/// socket, parse, stamp, batch, serve, format, socket back — and the
/// run doubles as a correctness sweep: any "ok" for a session the
/// connection does not own is a misrouted (cross-connection) delivery,
/// and every request must be answered (lost == 0).
FrontendResult run_frontend_config(const nn::LstmCell& cell, float threshold,
                                   num::Index shards, num::Index connections,
                                   num::Index reqs_per_conn) {
  FrontendResult result;
  result.shards = shards;
  result.connections = connections;
  result.reqs_per_conn = reqs_per_conn;

  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  serve::PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = 8;
  config.policy.max_wait_us = 200;
  serve::EnginePool pool(cell, pruner, config);

  serve::FrontendConfig fc;
  fc.unix_path = "/tmp/zss_bench_frontend_" + std::to_string(::getpid()) +
                 ".sock";
  fc.tcp_port = 0;
  serve::Frontend frontend(pool, fc, {});
  std::string error;
  if (!frontend.start(&error)) {
    std::fprintf(stderr, "frontend: %s\n", error.c_str());
    return result;
  }

  struct BConn {
    int fd = -1;
    std::string rbuf;
    num::Index done = 0;  // responses received
    bool greeted = false;
    std::chrono::steady_clock::time_point sent_at;
  };
  std::vector<BConn> conns(static_cast<std::size_t>(connections));

  sockaddr_un ua{};
  ua.sun_family = AF_UNIX;
  std::memcpy(ua.sun_path, fc.unix_path.c_str(), fc.unix_path.size() + 1);
  sockaddr_in ta{};
  ta.sin_family = AF_INET;
  ta.sin_port = htons(static_cast<std::uint16_t>(frontend.tcp_port()));
  ::inet_pton(AF_INET, "127.0.0.1", &ta.sin_addr);

  for (num::Index i = 0; i < connections; ++i) {
    BConn& c = conns[static_cast<std::size_t>(i)];
    const bool tcp = i % 2 == 1;
    c.fd = ::socket(tcp ? AF_INET : AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (c.fd < 0 ||
        ::connect(c.fd,
                  tcp ? reinterpret_cast<sockaddr*>(&ta)
                      : reinterpret_cast<sockaddr*>(&ua),
                  tcp ? sizeof(ta) : sizeof(ua)) < 0) {
      std::fprintf(stderr, "frontend bench: connect %lld failed: %s\n",
                   static_cast<long long>(i), std::strerror(errno));
      for (BConn& cc : conns) {
        if (cc.fd >= 0) ::close(cc.fd);
      }
      frontend.stop();
      frontend.join();
      return result;
    }
    if (tcp) {
      const int yes = 1;
      ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    }
    ::fcntl(c.fd, F_SETFL, O_NONBLOCK);
  }

  // Closed loop of window 1 per connection: `step` goes out when the
  // previous `ok` lands (the greeting triggers the first one).
  auto send_step = [&](num::Index i) {
    BConn& c = conns[static_cast<std::size_t>(i)];
    char buf[64];
    const int n = std::snprintf(
        buf, sizeof(buf), "step %lld %lld\n", static_cast<long long>(i + 1),
        static_cast<long long>((i + c.done) %
                               static_cast<num::Index>(cell.input_dim())));
    c.sent_at = std::chrono::steady_clock::now();
    // A 20-odd-byte line into a drained socket never fills the buffer;
    // spin on the theoretical EAGAIN rather than queueing client-side.
    while (::send(c.fd, buf, static_cast<std::size_t>(n), MSG_NOSIGNAL) < 0 &&
           (errno == EAGAIN || errno == EINTR)) {
    }
  };

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(connections * reqs_per_conn));
  std::vector<pollfd> pfds(static_cast<std::size_t>(connections));
  for (num::Index i = 0; i < connections; ++i) {
    pfds[static_cast<std::size_t>(i)] = {
        conns[static_cast<std::size_t>(i)].fd, POLLIN, 0};
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(connections) *
      static_cast<std::uint64_t>(reqs_per_conn);
  std::uint64_t received = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(120);
  char buf[65536];
  while (received < expected &&
         std::chrono::steady_clock::now() < deadline) {
    const int nready = ::poll(pfds.data(), pfds.size(), 1000);
    if (nready <= 0) continue;
    for (num::Index i = 0; i < connections; ++i) {
      pollfd& p = pfds[static_cast<std::size_t>(i)];
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      BConn& c = conns[static_cast<std::size_t>(i)];
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        p.fd = -p.fd;  // poll ignores negative fds; conn is dead
        continue;
      }
      c.rbuf.append(buf, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = c.rbuf.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string_view line(c.rbuf.data() + start, nl - start);
        start = nl + 1;
        if (line.rfind("hi ", 0) == 0) {
          c.greeted = true;
          send_step(i);
        } else if (line.rfind("ok ", 0) == 0) {
          unsigned long long sid = 0;
          std::sscanf(line.data(), "ok %llu", &sid);
          if (sid != static_cast<unsigned long long>(i + 1)) {
            ++result.misrouted;
          }
          latencies.push_back(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - c.sent_at)
                                  .count());
          ++received;
          if (++c.done < reqs_per_conn) {
            send_step(i);
          } else {
            p.fd = -p.fd;  // finished: stop polling, keep fd open
          }
        }
      }
      c.rbuf.erase(0, start);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.lost = expected - received;

  // Every connection stayed open end to end — close them only now.
  for (BConn& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  frontend.stop();
  frontend.join();

  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.rps = result.wall_ms == 0.0
                   ? 0.0
                   : static_cast<double>(received) / (result.wall_ms / 1e3);
  result.p50_us = percentile(latencies, 0.50);
  result.p99_us = percentile(latencies, 0.99);
  result.ok = true;
  return result;
}

/// Churn a session population `sessions` through a pool whose per-shard
/// RAM cap holds only a fraction of it, spill tier on — round-robin
/// arrivals mean nearly every return past the warm-up is either a
/// resident hit or a disk restore. Rates come from the SessionStore
/// counters; restore latency and bit-exactness from a direct
/// SegmentStore micro-loop against the same directory (real file I/O).
TieringResult run_tiering(const nn::LstmCell& cell, float threshold,
                          num::Index sessions, num::Index max_sessions,
                          num::Index requests, bool encoded,
                          const std::string& dir, std::uint64_t seed) {
  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  serve::PoolConfig config;
  config.shards = 2;
  config.policy.max_batch = 4;
  config.policy.max_wait_us = 0;
  config.session_ttl.max_sessions = max_sessions;
  config.spill.dir = dir;
  config.spill.encoded = encoded;
  // Each flavour starts from an empty tier: stale segment files from a
  // previous run would turn first touches into restores.
  {
    store::PosixEnv fresh;
    for (num::Index s = 0; s < config.shards; ++s) {
      fresh.remove(dir + "/shard_" + std::to_string(s) + ".seg");
    }
  }
  serve::EnginePool pool(cell, pruner, config);

  // Skewed drive: half the traffic hammers a small hot set (stays
  // resident under LRU — the hot hits), half cycles a population far
  // past the cap (every return is a disk restore — the warm hits).
  const num::Index hot_sessions = 12;
  num::Rng tokens(seed);
  for (num::Index i = 0; i < requests; ++i) {
    serve::Request r;
    const num::Index k = i / 2;
    r.session = (i % 2 == 0)
                    ? static_cast<serve::SessionId>(k % hot_sessions) + 1
                    : static_cast<serve::SessionId>(
                          hot_sessions + k % (sessions - hot_sessions)) +
                          1;
    r.token = tokens.below(cell.input_dim());
    r.arrival_us = static_cast<std::int64_t>(i);  // recency for the LRU
    r.seq = static_cast<std::uint64_t>(i);
    pool.enqueue(r);
  }
  std::vector<serve::ResponseSink> sinks(
      static_cast<std::size_t>(config.shards), [](const serve::Response&) {});
  const num::Index served = pool.drain_parallel(0, sinks);
  ZSS_ENSURES(served == requests);

  TieringResult t;
  t.encoded = encoded;
  t.sessions = sessions;
  t.max_sessions = max_sessions;
  t.requests = requests;
  std::uint64_t created = 0;
  for (num::Index s = 0; s < config.shards; ++s) {
    const auto& st = pool.shard(s).sessions();
    created += st.created();
    t.spilled += st.spilled();
    t.restored += st.restored();
    t.restore_corrupt += st.restore_corrupt();
  }
  const auto n = static_cast<double>(requests);
  t.warm_rate = static_cast<double>(t.restored) / n;
  t.cold_rate = static_cast<double>(created) / n;
  t.hot_rate = 1.0 - t.warm_rate - t.cold_rate;

  // Cold-restore micro-loop: spill K pruned-shaped states through a
  // SegmentStore on the real filesystem, then time each restore and
  // compare bits. Restore consumes the record, so one pass is exact.
  store::PosixEnv env;
  store::StoreConfig scfg;
  scfg.path = dir + "/micro.seg";
  scfg.encoded = encoded;
  const num::Index dh = cell.hidden_dim();
  {
    store::SegmentStore st(env, scfg, dh);
    const num::Index kStates = 256;
    std::vector<num::Matrix> hs, cs;
    num::Rng rng(seed + 17);
    for (num::Index k = 0; k < kStates; ++k) {
      num::Matrix h(1, dh, 0.0f), c(1, dh);
      for (num::Index j = 0; j < dh; ++j) {
        if (rng.bernoulli(0.1)) {  // ~90% zeros: the pruned steady state
          h(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
        c(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      st.spill(static_cast<std::uint64_t>(k) + 1, {1, 10, 0}, h, c);
      hs.push_back(std::move(h));
      cs.push_back(std::move(c));
    }
    std::vector<double> lat;
    lat.reserve(static_cast<std::size_t>(kStates));
    t.restore_bit_exact = true;
    const std::size_t row_bytes = static_cast<std::size_t>(dh) * sizeof(float);
    for (num::Index k = 0; k < kStates; ++k) {
      num::Matrix h(1, dh), c(1, dh);
      store::RecordMeta meta;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r =
          st.restore_into(static_cast<std::uint64_t>(k) + 1, &meta, h, c);
      const auto t1 = std::chrono::steady_clock::now();
      lat.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
      const std::size_t k_ = static_cast<std::size_t>(k);
      if (r != store::RestoreResult::kOk ||
          std::memcmp(h.data(), hs[k_].data(), row_bytes) != 0 ||
          std::memcmp(c.data(), cs[k_].data(), row_bytes) != 0) {
        t.restore_bit_exact = false;
      }
    }
    t.cold_restore_p50_us = percentile(lat, 0.50);
    t.cold_restore_p99_us = percentile(lat, 0.99);
  }
  env.remove(scfg.path);
  return t;
}

/// The crash-recovery bench: measures what `--durability=journal`
/// costs (group-commit tax vs the identical drive with durability off)
/// and proves what it buys — kill the pool cold halfway through a
/// workload on the real filesystem, restart it, re-drive only each
/// session's uncommitted suffix, and demand the final digest table be
/// bit-identical to the uninterrupted run's.
RecoveryResult run_recovery(const nn::LstmCell& cell, float threshold,
                            num::Index sessions, num::Index requests,
                            store::JournalSync sync, const std::string& dir) {
  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  const num::Index steps = requests / sessions;
  const auto token_at = [&](serve::SessionId sid, num::Index i) {
    return static_cast<num::Index>(
        num::splitmix64_mix(sid * 1000003ULL +
                            static_cast<std::uint64_t>(i)) %
        static_cast<std::uint64_t>(cell.input_dim()));
  };

  serve::PoolConfig base;
  base.shards = 2;
  base.policy.max_batch = 4;
  base.policy.max_wait_us = 0;

  // Drives steps [from, to) of every session and returns the wall ms.
  const auto drive = [&](serve::EnginePool& pool, num::Index from,
                         num::Index to,
                         const std::vector<num::Index>* committed,
                         std::int64_t arrival0) {
    std::int64_t arrival = arrival0;
    std::uint64_t seq = 0;
    num::Index enqueued = 0;
    for (num::Index i = from; i < to; ++i) {
      for (num::Index s = 0; s < sessions; ++s) {
        if (committed != nullptr &&
            i < (*committed)[static_cast<std::size_t>(s)]) {
          continue;  // the server already holds this step, committed
        }
        serve::Request r;
        r.session = static_cast<serve::SessionId>(s) + 1;
        r.token = token_at(r.session, i);
        r.arrival_us = ++arrival;
        r.seq = seq++;
        pool.enqueue(r);
        ++enqueued;
      }
    }
    std::vector<serve::ResponseSink> sinks(
        static_cast<std::size_t>(base.shards),
        [](const serve::Response&) {});
    const auto t0 = std::chrono::steady_clock::now();
    const num::Index served = pool.drain_parallel(arrival, sinks);
    const auto t1 = std::chrono::steady_clock::now();
    ZSS_ENSURES(served == enqueued);
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  RecoveryResult out;
  out.journal_sync = sync == store::JournalSync::kBatch ? "batch" : "none";
  out.sessions = sessions;
  out.requests = steps * sessions;

  // The uninterrupted oracle doubles as the durability-off baseline.
  serve::DigestTable oracle;
  {
    serve::EnginePool pool(cell, pruner, base);
    const double wall_ms = drive(pool, 0, steps, nullptr, 0);
    out.baseline_rps =
        static_cast<double>(steps * sessions) / (wall_ms / 1e3);
    oracle = pool.merged_digests();
  }

  // Journal run: fresh directory, same drive, crash at half.
  {
    store::PosixEnv fresh;
    for (num::Index s = 0; s < base.shards; ++s) {
      const std::string stem = dir + "/shard_" + std::to_string(s);
      fresh.remove(stem + ".seg");
      fresh.remove(stem + ".jnl");
      fresh.remove(stem + ".jnl.ckpt");
    }
  }
  serve::PoolConfig journaled = base;
  journaled.spill.dir = dir;
  journaled.spill.journal = true;
  journaled.spill.journal_sync = sync;

  const num::Index crash_at = steps / 2;
  {
    auto pool = std::make_unique<serve::EnginePool>(cell, pruner, journaled);
    const double wall_ms = drive(*pool, 0, crash_at, nullptr, 0);
    out.journal_rps =
        static_cast<double>(crash_at * sessions) / (wall_ms / 1e3);
    pool.reset();  // the crash: nothing flushed, nothing closed
  }
  out.journal_ratio =
      out.baseline_rps > 0.0 ? out.journal_rps / out.baseline_rps : 0.0;

  // Restart (timed: open + replay to serve-ready), then resume.
  const auto r0 = std::chrono::steady_clock::now();
  serve::EnginePool pool(cell, pruner, journaled);
  const auto r1 = std::chrono::steady_clock::now();
  out.recovery_wall_ms =
      std::chrono::duration<double, std::milli>(r1 - r0).count();
  out.recovered_sessions = pool.recovered_sessions();
  for (num::Index s = 0; s < base.shards; ++s) {
    if (const store::Journal* j = pool.journal(s)) {
      out.recovered_records += j->recovered_records();
    }
  }
  std::vector<num::Index> committed(static_cast<std::size_t>(sessions), 0);
  const serve::DigestTable recovered = pool.merged_digests();
  for (const auto& [sid, d] : recovered) {
    committed[static_cast<std::size_t>(sid - 1)] =
        static_cast<num::Index>(d.steps);
  }
  drive(pool, 0, steps, &committed, pool.recovered_max_arrival_us());
  out.recovered_bit_exact = pool.merged_digests() == oracle;
  return out;
}

void write_json(const std::string& path, num::Index dh, num::Index dx,
                num::Index sessions, const std::vector<Result>& results,
                const std::vector<LiveResult>& live,
                const std::vector<FrontendResult>& frontend,
                const std::vector<TieringResult>& tiering,
                const std::vector<StackedResult>& stacked,
                const std::vector<RecoveryResult>& recovery) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"kernel_backend\": \"%s\",\n",
               num::simd::active_backend().name);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"dh\": %lld, \"dx\": %lld, \"sessions\": %lld,\n",
               static_cast<long long>(dh), static_cast<long long>(dx),
               static_cast<long long>(sessions));

  // Headline: capacity scaling of 4 shards over 1 at batch 1, per
  // sparsity level (the acceptance bar of the serving subsystem).
  std::fprintf(f, "  \"shard_scaling_batch1\": [\n");
  bool first = true;
  for (const Result& a : results) {
    if (a.shards != 1 || a.max_batch != 1) continue;
    for (const Result& b : results) {
      if (b.shards != 4 || b.max_batch != 1 ||
          b.sparsity_target != a.sparsity_target) {
        continue;
      }
      std::fprintf(f,
                   "%s    {\"sparsity\": %.2f, \"metric\": \"critical_path\", "
                   "\"capacity_scaling_4s_over_1s\": %.3f, "
                   "\"wall_scaling_4s_over_1s\": %.3f}",
                   first ? "" : ",\n", a.sparsity_target,
                   b.capacity_rps / a.capacity_rps, b.wall_rps / a.wall_rps);
      first = false;
    }
  }
  std::fprintf(f, "\n  ],\n");

  // Live mode: open-loop through the persistent workers; p50/p99 are
  // end-to-end (queueing delay included) — docs/benchmarks.md.
  std::fprintf(f, "  \"live\": [\n");
  for (std::size_t i = 0; i < live.size(); ++i) {
    const LiveResult& r = live[i];
    std::fprintf(
        f,
        "    {\"shards\": %lld, \"max_batch\": %lld, \"sparsity\": %.2f, "
        "\"requests\": %lld, \"gap_us\": %lld, \"offered_rps\": %.1f, "
        "\"wall_ms\": %.2f, \"rps\": %.1f, \"mean_batch\": %.2f, "
        "\"live_p50_us\": %.2f, \"live_p99_us\": %.2f}%s\n",
        static_cast<long long>(r.shards), static_cast<long long>(r.max_batch),
        r.sparsity_target, static_cast<long long>(r.requests),
        static_cast<long long>(r.gap_us), r.offered_rps, r.wall_ms, r.rps,
        r.mean_batch, r.p50_us, r.p99_us, i + 1 < live.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Connection front end: real sockets through the epoll mux, 1000+
  // concurrent connections. The regression gate hard-fails on
  // misrouted>0 or lost>0 (correctness, not speed) and warns when
  // rps / p50 drift past the reference.
  std::fprintf(f, "  \"frontend\": [\n");
  for (std::size_t i = 0; i < frontend.size(); ++i) {
    const FrontendResult& r = frontend[i];
    std::fprintf(
        f,
        "    {\"shards\": %lld, \"connections\": %lld, "
        "\"reqs_per_conn\": %lld, \"wall_ms\": %.2f, \"rps\": %.1f, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f, "
        "\"misrouted\": %llu, \"lost\": %llu, \"ok\": %s}%s\n",
        static_cast<long long>(r.shards),
        static_cast<long long>(r.connections),
        static_cast<long long>(r.reqs_per_conn), r.wall_ms, r.rps, r.p50_us,
        r.p99_us, static_cast<unsigned long long>(r.misrouted),
        static_cast<unsigned long long>(r.lost), r.ok ? "true" : "false",
        i + 1 < frontend.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Spill tier: hit rates from the serving churn, restore latency and
  // bitwise fidelity from the SegmentStore micro-loop. The regression
  // gate hard-fails on restore_bit_exact=false / restore_corrupt>0 and
  // warns when cold-restore latency drifts >20% past the reference.
  std::fprintf(f, "  \"tiering\": [\n");
  for (std::size_t i = 0; i < tiering.size(); ++i) {
    const TieringResult& t = tiering[i];
    std::fprintf(
        f,
        "    {\"encoded\": %s, \"sessions\": %lld, "
        "\"max_sessions_per_shard\": %lld, \"requests\": %lld, "
        "\"hot_rate\": %.4f, \"warm_rate\": %.4f, \"cold_rate\": %.4f, "
        "\"spilled\": %llu, \"restored\": %llu, \"restore_corrupt\": %llu, "
        "\"restore_bit_exact\": %s, "
        "\"cold_restore_p50_us\": %.2f, \"cold_restore_p99_us\": %.2f}%s\n",
        t.encoded ? "true" : "false", static_cast<long long>(t.sessions),
        static_cast<long long>(t.max_sessions),
        static_cast<long long>(t.requests), t.hot_rate, t.warm_rate,
        t.cold_rate, static_cast<unsigned long long>(t.spilled),
        static_cast<unsigned long long>(t.restored),
        static_cast<unsigned long long>(t.restore_corrupt),
        t.restore_bit_exact ? "true" : "false", t.cold_restore_p50_us,
        t.cold_restore_p99_us, i + 1 < tiering.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Stacked serving: L-layer models, sequential vs wavefront-pipelined
  // flush. The regression gate hard-fails when this block is missing or
  // any row has bit_exact=false (every schedule and shard count must
  // reproduce the sequential 1-shard digests exactly).
  std::fprintf(f, "  \"stacked\": [\n");
  for (std::size_t i = 0; i < stacked.size(); ++i) {
    const StackedResult& r = stacked[i];
    std::fprintf(
        f,
        "    {\"layers\": %lld, \"shards\": %lld, \"max_batch\": %lld, "
        "\"pipeline\": %s, \"requests\": %lld, \"wall_ms\": %.2f, "
        "\"wall_rps\": %.1f, \"capacity_rps\": %.1f, \"bit_exact\": %s}%s\n",
        static_cast<long long>(r.layers), static_cast<long long>(r.shards),
        static_cast<long long>(r.max_batch), r.pipeline ? "true" : "false",
        static_cast<long long>(r.requests), r.wall_ms, r.wall_rps,
        r.capacity_rps, r.bit_exact ? "true" : "false",
        i + 1 < stacked.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Crash recovery: the journal's group-commit tax and the recovery
  // contract on the real filesystem. The regression gate hard-fails
  // when this block is missing or any row has recovered_bit_exact=
  // false (a resumed run diverging from the uninterrupted oracle is a
  // durability bug, never noise) and warns when the journal-on
  // throughput ratio drifts >20% below the reference.
  std::fprintf(f, "  \"recovery\": [\n");
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryResult& r = recovery[i];
    std::fprintf(
        f,
        "    {\"journal_sync\": \"%s\", \"sessions\": %lld, "
        "\"requests\": %lld, \"baseline_rps\": %.1f, "
        "\"journal_rps\": %.1f, \"journal_ratio\": %.3f, "
        "\"recovery_wall_ms\": %.2f, \"recovered_sessions\": %llu, "
        "\"recovered_records\": %llu, \"recovered_bit_exact\": %s}%s\n",
        r.journal_sync.c_str(), static_cast<long long>(r.sessions),
        static_cast<long long>(r.requests), r.baseline_rps, r.journal_rps,
        r.journal_ratio, r.recovery_wall_ms,
        static_cast<unsigned long long>(r.recovered_sessions),
        static_cast<unsigned long long>(r.recovered_records),
        r.recovered_bit_exact ? "true" : "false",
        i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"shards\": %lld, \"max_batch\": %lld, \"sparsity\": %.2f, "
        "\"threshold\": %.4f, \"requests\": %lld, \"mean_batch\": %.2f, "
        "\"observed_sparsity\": %.4f, "
        "\"observed_lane_sparsity\": %.4f, \"wall_ms\": %.2f, "
        "\"wall_rps\": %.1f, \"capacity_rps\": %.1f, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
        static_cast<long long>(r.shards), static_cast<long long>(r.max_batch),
        r.sparsity_target, static_cast<double>(r.threshold),
        static_cast<long long>(r.requests), r.mean_batch, r.observed_sparsity,
        r.observed_lane_sparsity, r.wall_ms, r.wall_rps, r.capacity_rps,
        r.p50_us, r.p99_us,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto dh = static_cast<num::Index>(flags.get_int("dh", 512));
  const auto dx = static_cast<num::Index>(flags.get_int("dx", 64));
  const auto sessions = static_cast<num::Index>(flags.get_int("sessions", 128));
  const auto requests = static_cast<num::Index>(
      flags.get_int("requests", flags.has("quick") ? 1024 : 4096));

  num::Rng rng(1234);
  nn::LstmCell cell(dx, dh, rng);

  bench::print_header("serving: shard count x max-batch x sparsity");
  std::printf(
      "dh=%lld dx=%lld sessions=%lld requests=%lld kernel_backend=%s "
      "hw_concurrency=%u\n",
      static_cast<long long>(dh), static_cast<long long>(dx),
      static_cast<long long>(sessions), static_cast<long long>(requests),
      num::simd::active_backend().name, std::thread::hardware_concurrency());
  std::printf("%-9s %-7s %-9s %10s %10s %12s %12s %10s %10s\n", "sparsity",
              "shards", "max_batch", "mean_b", "obs_spars", "wall_rps",
              "capacity_rps", "p50_us", "p99_us");

  std::vector<Result> results;
  for (const double sparsity : {0.5, 0.9}) {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, sparsity, calib_rng);
    for (const num::Index shards :
         {num::Index{1}, num::Index{2}, num::Index{4}}) {
      for (const num::Index max_batch :
           {num::Index{1}, num::Index{4}, num::Index{8}}) {
        const Result r = run_config(
            cell, threshold, sparsity, shards, max_batch, sessions, requests,
            static_cast<std::uint64_t>(sparsity * 100.0) * 1000 +
                static_cast<std::uint64_t>(shards * 10 + max_batch));
        results.push_back(r);
        std::printf("%-9.2f %-7lld %-9lld %10.2f %10.3f %12.1f %12.1f %10.2f "
                    "%10.2f\n",
                    r.sparsity_target, static_cast<long long>(r.shards),
                    static_cast<long long>(r.max_batch), r.mean_batch,
                    r.observed_sparsity, r.wall_rps, r.capacity_rps, r.p50_us,
                    r.p99_us);
      }
    }
  }

  // Live mode: the same cell behind the persistent worker loop, paced
  // open-loop, latency measured end-to-end (queueing included). One
  // shard vs four at the two sparsity levels' calibrated thresholds.
  const auto live_gap =
      static_cast<std::int64_t>(flags.get_int("live-gap-us", 100));
  const auto live_requests = static_cast<num::Index>(
      flags.get_int("live-requests", flags.has("quick") ? 512 : 2048));
  std::vector<LiveResult> live_results;
  std::printf("\nlive mode (open loop, gap %lld us): end-to-end latency "
              "includes queueing delay\n",
              static_cast<long long>(live_gap));
  std::printf("%-9s %-7s %-9s %10s %12s %10s %10s\n", "sparsity", "shards",
              "max_batch", "mean_b", "rps", "p50_us", "p99_us");
  for (const double sparsity : {0.5, 0.9}) {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, sparsity, calib_rng);
    for (const num::Index shards : {num::Index{1}, num::Index{4}}) {
      const LiveResult lr = run_live_config(
          cell, threshold, sparsity, shards, /*max_batch=*/8, sessions,
          live_requests, live_gap,
          static_cast<std::uint64_t>(sparsity * 100.0) * 7 + 5);
      live_results.push_back(lr);
      std::printf("%-9.2f %-7lld %-9lld %10.2f %12.1f %10.2f %10.2f\n",
                  lr.sparsity_target, static_cast<long long>(lr.shards),
                  static_cast<long long>(lr.max_batch), lr.mean_batch, lr.rps,
                  lr.p50_us, lr.p99_us);
    }
  }

  // Connection front end: 1000+ concurrent sockets (mixed UNIX + TCP)
  // through the epoll mux, closed loop of window 1 per connection. The
  // connection count is the acceptance floor and stays fixed even under
  // --quick; only the per-connection request count shrinks.
  const auto fe_conns = static_cast<num::Index>(
      flags.get_int("frontend-connections", 1000));
  const auto fe_reqs = static_cast<num::Index>(
      flags.get_int("frontend-reqs", flags.has("quick") ? 4 : 8));
  std::vector<FrontendResult> frontend_results;
  std::printf("\nfront end (epoll mux, %lld conns half unix/half tcp): "
              "per-request RTT through real sockets\n",
              static_cast<long long>(fe_conns));
  std::printf("%-7s %-7s %12s %10s %10s %10s %6s\n", "shards", "reqs/c",
              "rps", "p50_us", "p99_us", "misrouted", "lost");
  {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, 0.9, calib_rng);
    for (const num::Index shards : {num::Index{2}, num::Index{4}}) {
      const FrontendResult fr =
          run_frontend_config(cell, threshold, shards, fe_conns, fe_reqs);
      frontend_results.push_back(fr);
      std::printf("%-7lld %-7lld %12.1f %10.2f %10.2f %10llu %6llu%s\n",
                  static_cast<long long>(fr.shards),
                  static_cast<long long>(fr.reqs_per_conn), fr.rps, fr.p50_us,
                  fr.p99_us, static_cast<unsigned long long>(fr.misrouted),
                  static_cast<unsigned long long>(fr.lost),
                  fr.ok ? "" : "  SETUP FAILED");
    }
  }

  // Spill tier: population 6x the RAM footprint (2 shards x cap 16),
  // dense and encoded flavours, at the high-sparsity threshold where
  // the offset encoding earns its keep.
  std::vector<TieringResult> tiering;
  const std::string spill_dir = "bench_spill_tmp";
  if (::mkdir(spill_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s; skipping tiering section\n",
                 spill_dir.c_str());
  } else {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, 0.9, calib_rng);
    std::printf("\ntiering (spill tier on, sessions 6x RAM cap): hit rates "
                "and cold-restore latency\n");
    std::printf("%-8s %10s %10s %10s %10s %14s %14s\n", "encoded", "hot",
                "warm", "cold", "bit_exact", "restore_p50us", "restore_p99us");
    for (const bool encoded : {false, true}) {
      const TieringResult t = run_tiering(
          cell, threshold, /*sessions=*/96, /*max_sessions=*/16,
          std::min<num::Index>(requests, 2048), encoded, spill_dir,
          encoded ? 31u : 13u);
      tiering.push_back(t);
      std::printf("%-8s %10.3f %10.3f %10.3f %10s %14.2f %14.2f\n",
                  t.encoded ? "yes" : "no", t.hot_rate, t.warm_rate,
                  t.cold_rate, t.restore_bit_exact ? "yes" : "NO",
                  t.cold_restore_p50_us, t.cold_restore_p99_us);
    }
    store::PosixEnv cleanup_env;
    cleanup_env.remove(spill_dir + "/shard_0.seg");
    cleanup_env.remove(spill_dir + "/shard_1.seg");
    ::rmdir(spill_dir.c_str());
  }

  // Stacked serving: L-layer models through the sequential vs the
  // layer-pipelined (wavefront) flush, with a bit-exactness cross-check
  // — every configuration's per-session digests must equal the
  // sequential 1-shard reference of the same model. The regression gate
  // hard-fails if this block is missing or any row is not bit_exact.
  std::vector<StackedResult> stacked_results;
  {
    const auto stacked_requests = std::min<num::Index>(requests, 2048);
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, 0.9, calib_rng);
    num::Rng stack_rng(4321);
    std::deque<nn::LstmCell> layer_cells;
    std::deque<core::StatePruner> layer_pruners;
    for (num::Index l = 0; l < 3; ++l) {
      layer_cells.emplace_back(l == 0 ? dx : dh, dh, stack_rng);
      // Slightly different threshold per layer so a layer-order bug
      // cannot cancel out in the digests.
      layer_pruners.emplace_back(core::PrunerConfig::fixed(
          threshold * (1.0f + 0.1f * static_cast<float>(l))));
    }
    std::printf("\nstacked serving (L layers, wavefront pipeline vs "
                "sequential flush): digests vs 1-shard reference\n");
    std::printf("%-7s %-7s %-9s %12s %12s %10s\n", "layers", "shards",
                "pipeline", "wall_rps", "capacity_rps", "bit_exact");
    for (const num::Index layers : {num::Index{2}, num::Index{3}}) {
      std::vector<const nn::LstmCell*> cells;
      std::vector<const core::StatePruner*> pruners;
      for (num::Index l = 0; l < layers; ++l) {
        cells.push_back(&layer_cells[static_cast<std::size_t>(l)]);
        pruners.push_back(&layer_pruners[static_cast<std::size_t>(l)]);
      }
      serve::ServeModel model;
      model.cells = cells;
      model.pruners = pruners;
      serve::DigestTable reference;
      for (const num::Index shards : {num::Index{1}, num::Index{4}}) {
        for (const bool pipeline : {false, true}) {
          serve::DigestTable digests;
          StackedResult sr = run_stacked_config(
              model, dx, layers, shards, /*max_batch=*/4, pipeline, sessions,
              stacked_requests, static_cast<std::uint64_t>(layers) * 1000,
              digests);
          if (reference.empty()) reference = digests;  // 1-shard sequential
          sr.bit_exact = digests == reference;
          stacked_results.push_back(sr);
          std::printf("%-7lld %-7lld %-9s %12.1f %12.1f %10s\n",
                      static_cast<long long>(sr.layers),
                      static_cast<long long>(sr.shards),
                      sr.pipeline ? "on" : "off", sr.wall_rps, sr.capacity_rps,
                      sr.bit_exact ? "yes" : "NO");
        }
      }
    }
  }

  // Crash recovery: journal tax + kill-halfway/restart/resume fidelity
  // on the real filesystem, one row per group-commit mode.
  std::vector<RecoveryResult> recovery_results;
  const std::string recovery_dir = "bench_recovery_tmp";
  if (::mkdir(recovery_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s; skipping recovery section\n",
                 recovery_dir.c_str());
  } else {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, 0.9, calib_rng);
    std::printf("\nrecovery (write-ahead journal, kill at half + resume): "
                "commit tax and bit-exact restart\n");
    std::printf("%-7s %12s %12s %8s %12s %10s %10s\n", "sync", "base_rps",
                "jnl_rps", "ratio", "recover_ms", "sessions", "bit_exact");
    for (const store::JournalSync sync :
         {store::JournalSync::kBatch, store::JournalSync::kNone}) {
      const RecoveryResult rr =
          run_recovery(cell, threshold, /*sessions=*/24,
                       std::min<num::Index>(requests, 2048), sync,
                       recovery_dir);
      recovery_results.push_back(rr);
      std::printf("%-7s %12.1f %12.1f %8.3f %12.2f %10llu %10s\n",
                  rr.journal_sync.c_str(), rr.baseline_rps, rr.journal_rps,
                  rr.journal_ratio, rr.recovery_wall_ms,
                  static_cast<unsigned long long>(rr.recovered_sessions),
                  rr.recovered_bit_exact ? "yes" : "NO");
    }
    store::PosixEnv cleanup_env;
    for (num::Index s = 0; s < 2; ++s) {
      const std::string stem = recovery_dir + "/shard_" + std::to_string(s);
      cleanup_env.remove(stem + ".seg");
      cleanup_env.remove(stem + ".jnl");
      cleanup_env.remove(stem + ".jnl.ckpt");
    }
    ::rmdir(recovery_dir.c_str());
  }

  write_json("BENCH_serving.json", dh, dx, sessions, results, live_results,
             frontend_results, tiering, stacked_results, recovery_results);

  // Echo the headline scaling so CI logs show it without parsing JSON.
  for (const Result& a : results) {
    if (a.shards != 1 || a.max_batch != 1) continue;
    for (const Result& b : results) {
      if (b.shards == 4 && b.max_batch == 1 &&
          b.sparsity_target == a.sparsity_target) {
        std::printf(
            "sparsity %.2f: 4-shard capacity scaling %.2fx over 1 shard "
            "(wall %.2fx at hw_concurrency=%u)\n",
            a.sparsity_target, b.capacity_rps / a.capacity_rps,
            b.wall_rps / a.wall_rps, std::thread::hardware_concurrency());
      }
    }
  }
  return 0;
}
