// Serving throughput and latency across shard count, max-batch and
// sparsity — the sizing data behind docs/serving.md.
//
// Closed-loop drive: all requests are queued up front, then the pool is
// drained with one thread per shard. Two throughputs are reported:
//
//   * wall_rps      — requests / wall-clock of the drain. On a machine
//                     with >= shards cores this is the real number; on
//                     fewer cores the shard threads serialize.
//   * capacity_rps  — requests / max per-shard *CPU time* (the critical
//                     path). Thread CPU time does not count time spent
//                     descheduled, so this is the throughput the shard
//                     layout sustains once cores match shards — it is
//                     what wall_rps converges to there, and what
//                     hash-shard balance actually determines, so it is
//                     the number the shard-scaling acceptance bar
//                     reads. The JSON records hardware_concurrency so a
//                     reader can tell which regime a run was in.
//
// Latency is service latency: the wall-clock of the engine step (plus
// gather/scatter) that served each request — queueing delay in a
// closed-loop drive is an artifact of the drive, not of the system.
//
// The live-mode section measures the opposite regime: requests are
// submitted open-loop (paced by --live-gap-us) through the persistent
// worker loop (serve/worker.h), and latency is end-to-end — arrival
// stamp to response delivery, queueing and batching delay *included* —
// which is the number a latency SLO is written against.
//
// Usage: bench_serving [--dh=512] [--dx=64] [--sessions=32]
//                      [--requests=N] [--live-gap-us=G] [--quick]
// Writes BENCH_serving.json into the working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/sparse_inference.h"
#include "core/state_pruner.h"
#include "nn/lstm_cell.h"
#include "num/rng.h"
#include "num/simd/backend.h"
#include "serve/worker.h"

namespace {

using namespace zss;

struct Result {
  num::Index shards = 0;
  num::Index max_batch = 0;
  double sparsity_target = 0.0;
  float threshold = 0.0f;
  num::Index requests = 0;
  double mean_batch = 0.0;
  double observed_sparsity = 0.0;       // union (batch-intersected) view
  double observed_lane_sparsity = 0.0;  // what the per-lane skip exploits
  double wall_ms = 0.0;
  double wall_rps = 0.0;
  double capacity_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct LiveResult {
  num::Index shards = 0;
  num::Index max_batch = 0;
  double sparsity_target = 0.0;
  num::Index requests = 0;
  std::int64_t gap_us = 0;       // nominal open-loop pacing gap
  double offered_rps = 0.0;      // realized offered load (from stamps)
  double wall_ms = 0.0;
  double rps = 0.0;              // served / wall
  double mean_batch = 0.0;
  double p50_us = 0.0;           // end-to-end: arrival -> delivery
  double p99_us = 0.0;
};

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

/// Serving needs a batch-composition-independent pruner, so derive the
/// fixed threshold that realizes `sparsity` for this cell: run a short
/// batch-of-one probe in target-sparsity mode and export its effective
/// threshold (the documented StatePruner::effective_threshold use).
float calibrate_threshold(const nn::LstmCell& cell, double sparsity,
                          num::Rng& rng) {
  const core::StatePruner probe_pruner(core::PrunerConfig::target(sparsity));
  core::SparseLstmEngine probe(cell, probe_pruner);
  num::Matrix h(1, cell.hidden_dim(), 0.0f), c(1, cell.hidden_dim(), 0.0f);
  num::Matrix x(1, cell.input_dim());
  for (int t = 0; t < 20; ++t) {
    x.fill(0.0f);
    x(0, rng.below(cell.input_dim())) = 1.0f;
    probe.step(x, h, c);
  }
  // h is pruned storage; measure the threshold on the matching dense
  // state by one more un-pruned probe step.
  const core::StatePruner none(core::PrunerConfig::none());
  core::SparseLstmEngine dense_probe(cell, none);
  num::Matrix hd = h, cd = c;
  x.fill(0.0f);
  x(0, 0) = 1.0f;
  dense_probe.step(x, hd, cd);
  return probe_pruner.effective_threshold(hd);
}

Result run_config(const nn::LstmCell& cell, float threshold,
                  double sparsity_target, num::Index shards,
                  num::Index max_batch, num::Index sessions,
                  num::Index requests, std::uint64_t seed) {
  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  serve::PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 0;  // closed loop: batches close on size
  serve::EnginePool pool(cell, pruner, config);

  auto enqueue_all = [&] {
    num::Rng tokens(seed + 1);
    for (num::Index i = 0; i < requests; ++i) {
      serve::Request r;
      // Round-robin sessions: every client is equally active, so the
      // only load imbalance left is the hash's session->shard split.
      r.session = static_cast<serve::SessionId>(i % sessions) + 1;
      r.token = tokens.below(cell.input_dim());
      r.arrival_us = 0;
      r.seq = static_cast<std::uint64_t>(i);
      pool.enqueue(r);
    }
  };

  // Warm-up drain: create every session, fill every workspace, reach
  // the pruned steady state — then start the measurement epoch.
  std::vector<serve::ResponseSink> warm_sinks(
      static_cast<std::size_t>(shards), [](const serve::Response&) {});
  enqueue_all();
  pool.drain_parallel(0, warm_sinks);
  pool.reset_stats();

  // Measured drain, one latency log per shard (thread-private).
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(shards));
  std::vector<serve::ResponseSink> sinks;
  for (num::Index s = 0; s < shards; ++s) {
    auto& log = latencies[static_cast<std::size_t>(s)];
    log.reserve(static_cast<std::size_t>(requests));
    sinks.emplace_back([&log](const serve::Response& r) {
      log.push_back(r.service_us);
    });
  }
  enqueue_all();
  const auto t0 = std::chrono::steady_clock::now();
  const num::Index served = pool.drain_parallel(0, sinks);
  const auto t1 = std::chrono::steady_clock::now();
  ZSS_ENSURES(served == requests);

  Result r;
  r.shards = shards;
  r.max_batch = max_batch;
  r.sparsity_target = sparsity_target;
  r.threshold = threshold;
  r.requests = requests;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.wall_rps = static_cast<double>(requests) / (r.wall_ms / 1e3);

  double max_busy_us = 0.0;
  num::Index batches = 0;
  num::Index kept = 0, positions = 0;
  num::Index lane_kept = 0, lane_positions = 0;
  for (num::Index s = 0; s < shards; ++s) {
    max_busy_us = std::max(max_busy_us, pool.shard(s).stats().cpu_us);
    batches += pool.shard(s).stats().batches;
    kept += pool.shard(s).engine().stats().kept_positions;
    positions += pool.shard(s).engine().stats().positions;
    lane_kept += pool.shard(s).engine().stats().lane_kept_positions;
    lane_positions += pool.shard(s).engine().stats().lane_positions;
  }
  r.capacity_rps = max_busy_us == 0.0
                       ? 0.0
                       : static_cast<double>(requests) / (max_busy_us / 1e6);
  r.mean_batch = batches == 0 ? 0.0
                              : static_cast<double>(requests) /
                                    static_cast<double>(batches);
  r.observed_sparsity =
      positions == 0 ? 0.0
                     : 1.0 - static_cast<double>(kept) /
                                 static_cast<double>(positions);
  r.observed_lane_sparsity =
      lane_positions == 0 ? 0.0
                          : 1.0 - static_cast<double>(lane_kept) /
                                      static_cast<double>(lane_positions);

  std::vector<double> all;
  for (auto& log : latencies) all.insert(all.end(), log.begin(), log.end());
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  return r;
}

/// Open-loop live measurement through the persistent worker loop:
/// p50/p99 are end-to-end (queueing delay included), the regime the
/// closed-loop grid above deliberately excludes.
LiveResult run_live_config(const nn::LstmCell& cell, float threshold,
                           double sparsity_target, num::Index shards,
                           num::Index max_batch, num::Index sessions,
                           num::Index requests, std::int64_t gap_us,
                           std::uint64_t seed) {
  const core::StatePruner pruner(core::PrunerConfig::fixed(threshold));
  serve::PoolConfig config;
  config.shards = shards;
  config.policy.max_batch = max_batch;
  config.policy.max_wait_us = 200;
  serve::EnginePool pool(cell, pruner, config);

  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(requests));
  serve::LiveServer* server_ptr = nullptr;
  const serve::ResponseSink sink = [&](const serve::Response& r) {
    const double lat =
        static_cast<double>(server_ptr->now_us() - r.arrival_us);
    std::lock_guard<std::mutex> lock(mu);
    latencies.push_back(lat);
  };
  serve::LiveServer server(pool, sink);
  server_ptr = &server;

  // Warm-up burst: create sessions, fill workspaces, settle the ring.
  num::Rng tokens(seed);
  for (num::Index i = 0; i < sessions; ++i) {
    server.submit(static_cast<serve::SessionId>(i % sessions) + 1,
                  tokens.below(cell.input_dim()));
  }
  while (server.responded() < static_cast<std::uint64_t>(sessions)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    latencies.clear();
  }

  // Paced open loop: one producer, nominal inter-arrival gap_us. The
  // realized gap (sleep granularity included) is reported as
  // offered_rps so a reader can see what load was actually applied.
  const std::int64_t t0 = server.now_us();
  const auto wall0 = std::chrono::steady_clock::now();
  for (num::Index i = 0; i < requests; ++i) {
    server.submit(static_cast<serve::SessionId>(i % sessions) + 1,
                  tokens.below(cell.input_dim()));
    if (gap_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
    }
  }
  const std::int64_t t1 = server.now_us();
  server.shutdown();
  const auto wall1 = std::chrono::steady_clock::now();

  LiveResult r;
  r.shards = shards;
  r.max_batch = max_batch;
  r.sparsity_target = sparsity_target;
  r.requests = requests;
  r.gap_us = gap_us;
  r.offered_rps = t1 == t0 ? 0.0
                           : static_cast<double>(requests) /
                                 (static_cast<double>(t1 - t0) / 1e6);
  r.wall_ms = std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  r.rps = static_cast<double>(requests) / (r.wall_ms / 1e3);
  num::Index batches = 0, served = 0;
  for (num::Index s = 0; s < shards; ++s) {
    batches += pool.shard(s).stats().batches;
    served += pool.shard(s).stats().requests;
  }
  r.mean_batch = batches == 0 ? 0.0
                              : static_cast<double>(served) /
                                    static_cast<double>(batches);
  std::lock_guard<std::mutex> lock(mu);
  r.p50_us = percentile(latencies, 0.50);
  r.p99_us = percentile(latencies, 0.99);
  return r;
}

void write_json(const std::string& path, num::Index dh, num::Index dx,
                num::Index sessions, const std::vector<Result>& results,
                const std::vector<LiveResult>& live) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"kernel_backend\": \"%s\",\n",
               num::simd::active_backend().name);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"dh\": %lld, \"dx\": %lld, \"sessions\": %lld,\n",
               static_cast<long long>(dh), static_cast<long long>(dx),
               static_cast<long long>(sessions));

  // Headline: capacity scaling of 4 shards over 1 at batch 1, per
  // sparsity level (the acceptance bar of the serving subsystem).
  std::fprintf(f, "  \"shard_scaling_batch1\": [\n");
  bool first = true;
  for (const Result& a : results) {
    if (a.shards != 1 || a.max_batch != 1) continue;
    for (const Result& b : results) {
      if (b.shards != 4 || b.max_batch != 1 ||
          b.sparsity_target != a.sparsity_target) {
        continue;
      }
      std::fprintf(f,
                   "%s    {\"sparsity\": %.2f, \"metric\": \"critical_path\", "
                   "\"capacity_scaling_4s_over_1s\": %.3f, "
                   "\"wall_scaling_4s_over_1s\": %.3f}",
                   first ? "" : ",\n", a.sparsity_target,
                   b.capacity_rps / a.capacity_rps, b.wall_rps / a.wall_rps);
      first = false;
    }
  }
  std::fprintf(f, "\n  ],\n");

  // Live mode: open-loop through the persistent workers; p50/p99 are
  // end-to-end (queueing delay included) — docs/benchmarks.md.
  std::fprintf(f, "  \"live\": [\n");
  for (std::size_t i = 0; i < live.size(); ++i) {
    const LiveResult& r = live[i];
    std::fprintf(
        f,
        "    {\"shards\": %lld, \"max_batch\": %lld, \"sparsity\": %.2f, "
        "\"requests\": %lld, \"gap_us\": %lld, \"offered_rps\": %.1f, "
        "\"wall_ms\": %.2f, \"rps\": %.1f, \"mean_batch\": %.2f, "
        "\"live_p50_us\": %.2f, \"live_p99_us\": %.2f}%s\n",
        static_cast<long long>(r.shards), static_cast<long long>(r.max_batch),
        r.sparsity_target, static_cast<long long>(r.requests),
        static_cast<long long>(r.gap_us), r.offered_rps, r.wall_ms, r.rps,
        r.mean_batch, r.p50_us, r.p99_us, i + 1 < live.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"shards\": %lld, \"max_batch\": %lld, \"sparsity\": %.2f, "
        "\"threshold\": %.4f, \"requests\": %lld, \"mean_batch\": %.2f, "
        "\"observed_sparsity\": %.4f, "
        "\"observed_lane_sparsity\": %.4f, \"wall_ms\": %.2f, "
        "\"wall_rps\": %.1f, \"capacity_rps\": %.1f, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
        static_cast<long long>(r.shards), static_cast<long long>(r.max_batch),
        r.sparsity_target, static_cast<double>(r.threshold),
        static_cast<long long>(r.requests), r.mean_batch, r.observed_sparsity,
        r.observed_lane_sparsity, r.wall_ms, r.wall_rps, r.capacity_rps,
        r.p50_us, r.p99_us,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto dh = static_cast<num::Index>(flags.get_int("dh", 512));
  const auto dx = static_cast<num::Index>(flags.get_int("dx", 64));
  const auto sessions = static_cast<num::Index>(flags.get_int("sessions", 128));
  const auto requests = static_cast<num::Index>(
      flags.get_int("requests", flags.has("quick") ? 1024 : 4096));

  num::Rng rng(1234);
  nn::LstmCell cell(dx, dh, rng);

  bench::print_header("serving: shard count x max-batch x sparsity");
  std::printf(
      "dh=%lld dx=%lld sessions=%lld requests=%lld kernel_backend=%s "
      "hw_concurrency=%u\n",
      static_cast<long long>(dh), static_cast<long long>(dx),
      static_cast<long long>(sessions), static_cast<long long>(requests),
      num::simd::active_backend().name, std::thread::hardware_concurrency());
  std::printf("%-9s %-7s %-9s %10s %10s %12s %12s %10s %10s\n", "sparsity",
              "shards", "max_batch", "mean_b", "obs_spars", "wall_rps",
              "capacity_rps", "p50_us", "p99_us");

  std::vector<Result> results;
  for (const double sparsity : {0.5, 0.9}) {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, sparsity, calib_rng);
    for (const num::Index shards :
         {num::Index{1}, num::Index{2}, num::Index{4}}) {
      for (const num::Index max_batch :
           {num::Index{1}, num::Index{4}, num::Index{8}}) {
        const Result r = run_config(
            cell, threshold, sparsity, shards, max_batch, sessions, requests,
            static_cast<std::uint64_t>(sparsity * 100.0) * 1000 +
                static_cast<std::uint64_t>(shards * 10 + max_batch));
        results.push_back(r);
        std::printf("%-9.2f %-7lld %-9lld %10.2f %10.3f %12.1f %12.1f %10.2f "
                    "%10.2f\n",
                    r.sparsity_target, static_cast<long long>(r.shards),
                    static_cast<long long>(r.max_batch), r.mean_batch,
                    r.observed_sparsity, r.wall_rps, r.capacity_rps, r.p50_us,
                    r.p99_us);
      }
    }
  }

  // Live mode: the same cell behind the persistent worker loop, paced
  // open-loop, latency measured end-to-end (queueing included). One
  // shard vs four at the two sparsity levels' calibrated thresholds.
  const auto live_gap =
      static_cast<std::int64_t>(flags.get_int("live-gap-us", 100));
  const auto live_requests = static_cast<num::Index>(
      flags.get_int("live-requests", flags.has("quick") ? 512 : 2048));
  std::vector<LiveResult> live_results;
  std::printf("\nlive mode (open loop, gap %lld us): end-to-end latency "
              "includes queueing delay\n",
              static_cast<long long>(live_gap));
  std::printf("%-9s %-7s %-9s %10s %12s %10s %10s\n", "sparsity", "shards",
              "max_batch", "mean_b", "rps", "p50_us", "p99_us");
  for (const double sparsity : {0.5, 0.9}) {
    num::Rng calib_rng(99);
    const float threshold = calibrate_threshold(cell, sparsity, calib_rng);
    for (const num::Index shards : {num::Index{1}, num::Index{4}}) {
      const LiveResult lr = run_live_config(
          cell, threshold, sparsity, shards, /*max_batch=*/8, sessions,
          live_requests, live_gap,
          static_cast<std::uint64_t>(sparsity * 100.0) * 7 + 5);
      live_results.push_back(lr);
      std::printf("%-9.2f %-7lld %-9lld %10.2f %12.1f %10.2f %10.2f\n",
                  lr.sparsity_target, static_cast<long long>(lr.shards),
                  static_cast<long long>(lr.max_batch), lr.mean_batch, lr.rps,
                  lr.p50_us, lr.p99_us);
    }
  }

  write_json("BENCH_serving.json", dh, dx, sessions, results, live_results);

  // Echo the headline scaling so CI logs show it without parsing JSON.
  for (const Result& a : results) {
    if (a.shards != 1 || a.max_batch != 1) continue;
    for (const Result& b : results) {
      if (b.shards == 4 && b.max_batch == 1 &&
          b.sparsity_target == a.sparsity_target) {
        std::printf(
            "sparsity %.2f: 4-shard capacity scaling %.2fx over 1 shard "
            "(wall %.2fx at hw_concurrency=%u)\n",
            a.sparsity_target, b.capacity_rps / a.capacity_rps,
            b.wall_rps / a.wall_rps, std::thread::hardware_concurrency());
      }
    }
  }
  return 0;
}
