// Ablation A6 — weight sparsity (ESE/CBSR) versus state sparsity (this
// paper), end to end on the same char-LM task.
//
// Both philosophies are trained with their own recipe from the same
// dense base model:
//   - state path: pruned fine-tuning (Eq. 4-6), run on the
//     zero-state-skipping accelerator model;
//   - weight path: magnitude prune + masked retraining (Han's recipe),
//     compressed to CSC and run on the ESE-style timing model (plus its
//     CBSR load-balanced variant).
// The punchline the paper argues in §IV: state skipping reaches similar
// accuracy while using *dense* weights, and its skip logic has no load
// imbalance to pay for.
#include <cstdio>

#include "accel/lstm_accelerator.h"
#include "baseline/ese_timing.h"
#include "baseline/weight_pruned_lm.h"
#include "bench_util.h"
#include "core/zss.h"
#include "num/stats.h"

namespace {

using namespace zss;

void train_epochs(core::PrunedLstmLm& model, const data::CharCorpus& corpus,
                  int epochs) {
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int e = 0; e < epochs; ++e) {
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      (void)model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const double sparsity = flags.get("sparsity", 0.8);
  const auto hidden = static_cast<num::Index>(flags.get_int("hidden", 96));
  const int epochs = static_cast<int>(flags.get_int("epochs", 3));

  data::CharCorpusConfig dcfg;
  dcfg.train_chars = 30000;
  dcfg.valid_chars = 3000;
  dcfg.test_chars = 3000;
  dcfg.lexicon_words = 120;
  dcfg.successor_prob = 0.85;
  const auto corpus = data::CharCorpus::generate(dcfg);

  bench::print_header(
      "Ablation A6: state sparsity (this work) vs weight sparsity "
      "(ESE/CBSR baseline)");
  std::printf("char task, hidden=%lld, sparsity target %.0f%%\n\n",
              static_cast<long long>(hidden), sparsity * 100.0);

  // ---- Shared dense base ----
  core::LmConfig cfg;
  cfg.vocab = data::CharCorpus::kVocab;
  cfg.hidden = hidden;
  core::PrunedLstmLm dense_model(cfg);
  train_epochs(dense_model, corpus, epochs);
  const auto dense_eval = dense_model.evaluate(corpus.test(), 4, 25);
  std::printf("dense base model:      BPC %.4f\n", dense_eval.bpc);

  // ---- State-pruning path (this work) ----
  core::LmConfig state_cfg = cfg;
  state_cfg.pruner = core::PrunerConfig::target(sparsity);
  core::PrunedLstmLm state_model(state_cfg);
  {
    auto src = dense_model.parameters();
    auto dst = state_model.parameters();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  }
  train_epochs(state_model, corpus, 2);
  const auto state_eval = state_model.evaluate(corpus.test(), 4, 25);
  std::printf("state-pruned (%.0f%%):   BPC %.4f (states sparse, weights "
              "dense)\n",
              sparsity * 100.0, state_eval.bpc);

  // ---- Weight-pruning path (ESE baseline) ----
  baseline::WeightPrunedLm weight_model(cfg);
  {
    auto src = dense_model.parameters();
    auto dst = weight_model.model().parameters();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  }
  weight_model.prune_weights(sparsity);
  nn::Adam adam(2e-3f);
  data::LmBatcher batcher(corpus.train(), 8, 25);
  for (int e = 0; e < 2; ++e) {
    for (num::Index w = 0; w < batcher.num_windows(); ++w) {
      (void)weight_model.train_window(batcher.window(w), adam, 5.0f);
    }
  }
  const auto weight_eval = weight_model.evaluate(corpus.test(), 4, 25);
  std::printf("weight-pruned (%.0f%%):  BPC %.4f (weights sparse, states "
              "dense)\n\n",
              sparsity * 100.0, weight_eval.bpc);

  // ---- Hardware: this work's accelerator on the state-pruned model ----
  sparse::SparsityMeter meter;
  std::vector<num::Matrix> dense_states;
  (void)state_model.collect_states(corpus.valid(), 1, 80, meter, nullptr,
                                   &dense_states);
  std::vector<float> all_values;
  for (const auto& s : dense_states) {
    all_values.insert(all_values.end(), s.flat().begin(), s.flat().end());
  }
  accel::LstmAcceleratorOptions opt;
  opt.prune_threshold = num::quantile_abs(all_values, sparsity);
  opt.input_mode = accel::InputMode::kOneHot;
  opt.track_reference = false;
  accel::LstmAccelerator hw_sparse(accel::AcceleratorConfig{}, opt,
                                   state_model.cell());
  accel::LstmAccelerator hw_dense(accel::AcceleratorConfig{}, opt,
                                  state_model.cell());
  hw_sparse.reset(1);
  hw_dense.reset(1);
  num::Matrix x(1, cfg.vocab);
  for (num::Index t = 0; t < 100; ++t) {
    x.fill(0.0f);
    x(0, corpus.test()[static_cast<std::size_t>(t)]) = 1.0f;
    hw_sparse.step(x);
    hw_dense.step_dense(x);
  }
  const double zss_speedup =
      static_cast<double>(hw_dense.totals().cycles) /
      static_cast<double>(hw_sparse.totals().cycles);
  std::printf("this work's accelerator (state skipping):\n"
              "  dense %lld cycles -> sparse %lld cycles: %.2fx speedup, "
              "observed state sparsity %.0f%%\n",
              static_cast<long long>(hw_dense.totals().cycles),
              static_cast<long long>(hw_sparse.totals().cycles), zss_speedup,
              hw_sparse.totals().observed_sparsity() * 100.0);

  // ---- Hardware: ESE / CBSR on the weight-pruned model ----
  const auto wh_csc = baseline::CscMatrix::compress(
      weight_model.cell().wh().value, baseline::CscConfig{});
  baseline::EseConfig ese_cfg;
  const auto ese = baseline::EseTimingModel(ese_cfg).matvec(wh_csc);
  ese_cfg.balanced = true;
  const auto cbsr = baseline::EseTimingModel(ese_cfg).matvec(wh_csc);
  const auto dense_cycles =
      4 * hidden * hidden / ese_cfg.pes;  // dense matvec on the same PEs
  std::printf("\nESE-style accelerator (weight skipping) per timestep, "
              "Wh matvec:\n"
              "  dense-equivalent %lld cycles; ESE %lld (%.2fx), "
              "CBSR %lld (%.2fx); ESE imbalance waste %.0f%%\n",
              static_cast<long long>(dense_cycles),
              static_cast<long long>(ese.cycles),
              static_cast<double>(dense_cycles) /
                  static_cast<double>(ese.cycles),
              static_cast<long long>(cbsr.cycles),
              static_cast<double>(dense_cycles) /
                  static_cast<double>(cbsr.cycles),
              ese.imbalance_waste() * 100.0);
  std::printf("  (paper §IV: ESE reports 4.2x over its dense baseline; "
              "CBSR improves ESE 25-30%%)\n");

  std::printf(
      "\nsummary at %.0f%% sparsity: state pruning BPC %+.4f vs dense, "
      "weight pruning BPC %+.4f vs dense;\nstate skipping needs no "
      "load balancing and keeps weights dense (sequential DRAM reads).\n",
      sparsity * 100.0, state_eval.bpc - dense_eval.bpc,
      weight_eval.bpc - dense_eval.bpc);
  return 0;
}
