// §III-C "Methodology" — the accelerator's specification table:
// area, frequency, peak performance and peak energy efficiency.
//
// The silicon area is a synthesis result (TSMC 65 nm GP, Cadence Genus)
// that a simulator cannot re-derive; it is reported as the paper
// constant. Peak performance and efficiency are recomputed from the
// model and must equal the paper's numbers by construction.
#include <cstdio>

#include "accel/energy.h"
#include "accel/scheduler.h"
#include "bench_util.h"

int main() {
  using namespace zss;
  const accel::AcceleratorConfig cfg;
  const accel::EnergyConfig ecfg;

  bench::print_header("Accelerator specification (paper §III-C)");
  std::printf("%-38s %s\n", "technology", "TSMC 65 nm GP (paper constant)");
  std::printf("%-38s %.0f MHz\n", "nominal frequency", cfg.clock_hz / 1e6);
  std::printf("%-38s %lld tiles x %lld PEs = %lld\n", "PE array",
              static_cast<long long>(cfg.tiles),
              static_cast<long long>(cfg.pes_per_tile),
              static_cast<long long>(cfg.total_pes()));
  std::printf("%-38s %.1f Gbps (%lld weights + %lld input byte / cycle)\n",
              "off-chip DRAM (LPDDR4)", cfg.dram_gbps,
              static_cast<long long>(cfg.weights_per_cycle()),
              static_cast<long long>(cfg.input_bytes_per_cycle()));
  std::printf("%-38s %lld x %lld-bit per PE\n", "scratch SRAM",
              static_cast<long long>(cfg.scratch_entries),
              static_cast<long long>(cfg.scratch_bits));
  std::printf("%-38s %d-bit zero-run counter\n", "output encoder",
              cfg.offset_bits);
  std::printf("%-38s 1.1 mm^2 (paper synthesis result)\n", "silicon area");

  bench::print_row("peak performance (GOPS)", cfg.peak_gops(), 76.8);
  bench::print_row("chip power (mW)", ecfg.constant_power_w * 1000.0, 83.0);
  bench::print_row("peak energy efficiency (GOPS/W)",
                   cfg.peak_gops() / ecfg.constant_power_w, 925.3);
  return 0;
}
