// Shared helpers for the figure-reproduction benches: a tiny flag parser
// (--quick / --full plus key=value overrides) and aligned table output so
// every bench prints the paper's rows next to the measured ones.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace zss::bench {

/// Parses "--name=value" style flags; everything is optional.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& name) const {
    for (const auto& a : args_) {
      if (a == "--" + name) return true;
      if (a.rfind("--" + name + "=", 0) == 0) return true;
    }
    return false;
  }

  double get(const std::string& name, double fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return std::atof(a.c_str() + prefix.size());
    }
    return fallback;
  }

  long get_int(const std::string& name, long fallback) const {
    return static_cast<long>(get(name, static_cast<double>(fallback)));
  }

 private:
  std::vector<std::string> args_;
};

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void print_row(const char* label, double measured, double paper) {
  if (paper > 0.0) {
    std::printf("%-34s measured %10.3f   paper %10.3f   ratio %6.3f\n",
                label, measured, paper, measured / paper);
  } else {
    std::printf("%-34s measured %10.3f   (no paper value)\n", label,
                measured);
  }
}

}  // namespace zss::bench
